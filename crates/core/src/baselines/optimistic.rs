//! Park–Moon optimistic register coalescing — Figure 2(b); the paper's
//! strongest coalescing baseline ("optimistic" in Figures 9–11).
//!
//! Coalescing is performed *aggressively* up front to exploit its positive
//! effect on colorability; if a coalesced node later fails to get a color,
//! the *undo coalesce* phase splits it back into its primitive live ranges
//! and colors as many of them as possible (deferring stubborn ones, then
//! spilling).

use super::coalesce::{aggressive_coalesce, fold_spill_costs};
use crate::node::NodeId;
use crate::pipeline::{
    run_pipeline, run_pipeline_traced, Analyses, ClassCtx, ClassStrategy, RoundOutcome,
};
use crate::simplify::{simplify, SimplifyMode};
use crate::{AllocError, AllocOutput, RegisterAllocator};
use pdgc_ir::Function;
use pdgc_obs::{with_span, Event, Phase, Tracer};
use pdgc_target::{PhysReg, TargetDesc};

/// The optimistic-coalescing allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimisticAllocator;

impl ClassStrategy for OptimisticAllocator {
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        _analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome {
        let round = ctx.round as u32;
        let class = ctx.class;
        // Keep the pre-coalescing graph: undoing needs primitive
        // interference.
        let pristine = ctx.ifg.clone();
        with_span(tracer, Phase::Coalesce, round, Some(class), || {
            aggressive_coalesce(&mut ctx.ifg, &ctx.copies)
        });
        let mut costs = ctx.spill_costs.clone();
        fold_spill_costs(&ctx.ifg, &mut costs);
        let sr = with_span(tracer, Phase::Simplify, round, Some(class), || {
            simplify(&mut ctx.ifg, ctx.k, &costs, SimplifyMode::Optimistic)
        });
        ctx.ifg.restore_all();

        let select_started = tracer.enabled().then(std::time::Instant::now);
        let nn = ctx.nodes.num_nodes();
        let mut assignment: Vec<Option<PhysReg>> = (0..nn)
            .map(|i| {
                let n = NodeId::new(i);
                ctx.nodes.is_precolored(n).then(|| ctx.nodes.phys_reg(n))
            })
            .collect();
        let mut spilled: Vec<NodeId> = Vec::new();
        let mut split: Vec<bool> = vec![false; nn]; // primitives colored separately

        for &n in sr.stack.iter().rev() {
            // Forbidden: colors of the merged node's neighbors.
            let mut used = vec![false; ctx.k];
            for &x in ctx.ifg.neighbors_slice(n) {
                if let Some(r) = assignment[x.index()] {
                    used[r.index()] = true;
                }
            }
            let avail: Vec<PhysReg> = target
                .regs(ctx.class)
                .filter(|r| !used[r.index()])
                .collect();
            if let Some(&reg) = avail
                .iter()
                .find(|r| !target.is_volatile(**r))
                .or_else(|| avail.first())
            {
                assignment[n.index()] = Some(reg);
                continue;
            }
            // Undo coalescing: split into primitive nodes.
            let primitives: Vec<NodeId> = (0..nn)
                .map(NodeId::new)
                .filter(|&p| ctx.ifg.rep(p) == n && !ctx.nodes.is_precolored(p))
                .collect();
            if primitives.len() <= 1 {
                spilled.extend(primitives);
                continue;
            }
            // Color primitives individually against the pristine graph,
            // costliest first; a failed primitive gets one deferred retry,
            // then spills.
            let mut order: Vec<NodeId> = primitives.clone();
            order.sort_by_key(|p| {
                std::cmp::Reverse(ctx.spill_costs.get(p.index()).copied().unwrap_or(0))
            });
            let mut deferred: Vec<NodeId> = Vec::new();
            let mut group_colors: Vec<PhysReg> = Vec::new();
            let try_color = |p: NodeId,
                                 assignment: &mut Vec<Option<PhysReg>>,
                                 group_colors: &mut Vec<PhysReg>|
             -> bool {
                let mut used = vec![false; ctx.k];
                for &x in pristine.neighbors_slice(p) {
                    // A neighbor's color: its own if split, else its
                    // representative's.
                    let c = assignment[x.index()]
                        .or_else(|| assignment[ctx.ifg.rep(x).index()]);
                    if let Some(r) = c {
                        used[r.index()] = true;
                    }
                }
                // Prefer a color the group already uses (fewest distinct
                // colors), then non-volatile-first.
                let choice = group_colors
                    .iter()
                    .copied()
                    .find(|r| !used[r.index()])
                    .or_else(|| {
                        target
                            .regs(ctx.class)
                            .find(|r| !used[r.index()] && !target.is_volatile(*r))
                    })
                    .or_else(|| target.regs(ctx.class).find(|r| !used[r.index()]));
                match choice {
                    Some(r) => {
                        assignment[p.index()] = Some(r);
                        if !group_colors.contains(&r) {
                            group_colors.push(r);
                        }
                        true
                    }
                    None => false,
                }
            };
            for p in order {
                if !try_color(p, &mut assignment, &mut group_colors) {
                    deferred.push(p);
                }
            }
            for p in deferred {
                if !try_color(p, &mut assignment, &mut group_colors) {
                    spilled.push(p);
                }
            }
            for p in &primitives {
                split[p.index()] = true;
            }
        }

        // Non-split merged members inherit the representative's register.
        for i in 0..nn {
            let p = NodeId::new(i);
            if ctx.ifg.is_merged(p) && !split[i] && assignment[i].is_none() {
                assignment[i] = assignment[ctx.ifg.rep(p).index()];
            }
        }
        if let Some(t0) = select_started {
            tracer.record(&Event::Span {
                phase: Phase::Select,
                round,
                class: Some(class),
                nanos: t0.elapsed().as_nanos(),
            });
        }
        RoundOutcome { assignment, spilled }
    }
}

impl RegisterAllocator for OptimisticAllocator {
    fn name(&self) -> &'static str {
        "optimistic-coalescing"
    }

    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError> {
        run_pipeline(func, target, self)
    }

    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_traced(func, target, self, tracer)
    }

    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: crate::CheckMode,
        scope: crate::CheckScope,
        scratch: &mut crate::PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        crate::pipeline::run_pipeline_scratch_checked(
            func, target, self, tracer, check, scope, scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    #[test]
    fn coalesces_like_aggressive_in_easy_cases() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let a = b.copy(p);
        let c = b.copy(a);
        b.ret(Some(c));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = OptimisticAllocator.allocate(&f, &target).unwrap();
        assert_eq!(out.stats.copies_remaining, 0);
        assert_eq!(out.stats.spill_instructions, 0);
    }

    #[test]
    fn undo_splits_instead_of_spilling_when_possible() {
        // Copy-related values that, once coalesced, conflict under
        // pressure: optimism + undo must keep spills low and the code
        // valid.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let vals: Vec<_> = (0..5).map(|i| b.load(p, 16 + 32 * i)).collect();
        let copies: Vec<_> = vals.iter().map(|&v| b.copy(v)).collect();
        let mut acc = copies[0];
        for &v in &copies[1..] {
            acc = b.bin(BinOp::Add, acc, v);
        }
        let mut acc2 = vals[0];
        for &v in &vals[1..] {
            acc2 = b.bin(BinOp::Add, acc2, v);
        }
        let r = b.bin(BinOp::Add, acc, acc2);
        b.ret(Some(r));
        let f = b.finish();
        let target = TargetDesc::toy(4);
        let out = OptimisticAllocator.allocate(&f, &target).unwrap();
        assert!(out.lowered.verify().is_ok());
    }
}
