//! Briggs' optimistic allocator with aggressive coalescing and biased
//! coloring — Figure 1(b); "Briggs + aggressive" in the paper's §6.

use super::coalesce::{aggressive_coalesce, color_stack, fold_spill_costs, propagate_merged};
use crate::pipeline::{
    run_pipeline, run_pipeline_traced, Analyses, ClassCtx, ClassStrategy, RoundOutcome,
};
use crate::simplify::{simplify, SimplifyMode};
use crate::{AllocError, AllocOutput, RegisterAllocator};
use pdgc_ir::Function;
use pdgc_obs::{with_span, Phase, Tracer};
use pdgc_target::TargetDesc;

/// Briggs-style optimistic coloring: aggressive coalescing, optimistic
/// node removal when the graph blocks, biased select, spill only when the
/// select phase truly finds no color.
#[derive(Clone, Copy, Debug, Default)]
pub struct BriggsAllocator;

impl ClassStrategy for BriggsAllocator {
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        _analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome {
        let round = ctx.round as u32;
        let class = ctx.class;
        with_span(tracer, Phase::Coalesce, round, Some(class), || {
            aggressive_coalesce(&mut ctx.ifg, &ctx.copies)
        });
        let mut costs = ctx.spill_costs.clone();
        fold_spill_costs(&ctx.ifg, &mut costs);
        let sr = with_span(tracer, Phase::Simplify, round, Some(class), || {
            simplify(&mut ctx.ifg, ctx.k, &costs, SimplifyMode::Optimistic)
        });
        ctx.ifg.restore_all();
        let (mut assignment, spilled_reps) =
            with_span(tracer, Phase::Select, round, Some(class), || {
                color_stack(
                    &ctx.ifg,
                    &ctx.nodes,
                    &sr.stack,
                    target,
                    Some(&ctx.copies), // biased coloring
                    true,
                )
            });
        propagate_merged(&ctx.ifg, &mut assignment);
        // A spilled representative spills all members.
        let mut spilled = Vec::new();
        for &s in &spilled_reps {
            for i in 0..ctx.nodes.num_nodes() {
                let n = crate::node::NodeId::new(i);
                if ctx.ifg.rep(n) == s && !ctx.nodes.is_precolored(n) {
                    assignment[n.index()] = None;
                    spilled.push(n);
                }
            }
        }
        RoundOutcome { assignment, spilled }
    }
}

impl RegisterAllocator for BriggsAllocator {
    fn name(&self) -> &'static str {
        "briggs-aggressive"
    }

    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError> {
        run_pipeline(func, target, self)
    }

    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_traced(func, target, self, tracer)
    }

    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: crate::CheckMode,
        scope: crate::CheckScope,
        scratch: &mut crate::PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        crate::pipeline::run_pipeline_scratch_checked(
            func, target, self, tracer, check, scope, scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    #[test]
    fn optimism_beats_chaitin_on_diamond_pattern() {
        // A graph that blocks simplification but is colorable: the classic
        // diamond (4-cycle) with K=2. Chaitin spills; Briggs colors it.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        // Build a 4-cycle interference pattern: a-b, b-c, c-d, d-a.
        let a = b.load(p, 0);
        let c = b.load(p, 32);
        let s1 = b.bin(BinOp::Add, a, c); // a dies, c lives
        let d = b.load(p, 64);
        let s2 = b.bin(BinOp::Add, c, d);
        let s3 = b.bin(BinOp::Add, s1, s2);
        b.ret(Some(s3));
        let f = b.finish();
        let target = TargetDesc::toy(3);
        let out = BriggsAllocator.allocate(&f, &target).unwrap();
        assert!(out.lowered.verify().is_ok());
    }

    #[test]
    fn handles_loops_and_calls() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let r = b.call("g", vec![p], Some(RegClass::Int)).unwrap();
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, r, z, header, exit);
        b.switch_to(exit);
        b.ret(Some(p));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = BriggsAllocator.allocate(&f, &target).unwrap();
        assert_eq!(out.stats.spill_instructions, 0);
        // p crosses calls; under the non-volatile-first heuristic it must
        // not need caller saves.
        assert_eq!(out.stats.caller_save_insts, 0);
    }
}
