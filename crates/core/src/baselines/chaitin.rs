//! Chaitin's allocator with aggressive coalescing — Figure 1(a) of the
//! paper and the *base* algorithm of the Figure 9 ratios.

use super::coalesce::{aggressive_coalesce, color_stack, fold_spill_costs, propagate_merged};
use crate::pipeline::{
    run_pipeline, run_pipeline_traced, Analyses, ClassCtx, ClassStrategy, RoundOutcome,
};
use crate::simplify::{simplify, SimplifyMode};
use crate::{AllocError, AllocOutput, RegisterAllocator};
use pdgc_ir::Function;
use pdgc_obs::{with_span, Phase, Tracer};
use pdgc_target::{PhysReg, TargetDesc};

/// Chaitin-style coloring: renumber → build → **aggressive coalesce** →
/// simplify with eager spill decisions → select in reverse simplification
/// order.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaitinAllocator;

impl ClassStrategy for ChaitinAllocator {
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        _analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome {
        let round = ctx.round as u32;
        let class = ctx.class;
        with_span(tracer, Phase::Coalesce, round, Some(class), || {
            aggressive_coalesce(&mut ctx.ifg, &ctx.copies)
        });
        let mut costs = ctx.spill_costs.clone();
        fold_spill_costs(&ctx.ifg, &mut costs);
        let sr = with_span(tracer, Phase::Simplify, round, Some(class), || {
            simplify(&mut ctx.ifg, ctx.k, &costs, SimplifyMode::Chaitin)
        });
        if sr.must_spill() {
            // Spill decisions are definite: split now, retry next round.
            let assignment: Vec<Option<PhysReg>> = (0..ctx.nodes.num_nodes())
                .map(|i| {
                    let n = crate::node::NodeId::new(i);
                    ctx.nodes.is_precolored(n).then(|| ctx.nodes.phys_reg(n))
                })
                .collect();
            // A spilled representative spills all of its members.
            let mut spilled = Vec::new();
            for &s in &sr.chaitin_spills {
                for i in 0..ctx.nodes.num_nodes() {
                    let n = crate::node::NodeId::new(i);
                    if ctx.ifg.rep(n) == s && !ctx.nodes.is_precolored(n) {
                        spilled.push(n);
                    }
                }
            }
            return RoundOutcome { assignment, spilled };
        }
        ctx.ifg.restore_all();
        let (mut assignment, spilled) = with_span(tracer, Phase::Select, round, Some(class), || {
            color_stack(
                &ctx.ifg,
                &ctx.nodes,
                &sr.stack,
                target,
                None,
                true, // the §6.2 non-volatile-first heuristic
            )
        });
        assert!(
            spilled.is_empty(),
            "Chaitin select found no color after clean simplification"
        );
        propagate_merged(&ctx.ifg, &mut assignment);
        RoundOutcome {
            assignment,
            spilled: Vec::new(),
        }
    }
}

impl RegisterAllocator for ChaitinAllocator {
    fn name(&self) -> &'static str {
        "chaitin-aggressive"
    }

    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError> {
        run_pipeline(func, target, self)
    }

    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_traced(func, target, self, tracer)
    }

    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: crate::CheckMode,
        scope: crate::CheckScope,
        scratch: &mut crate::PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        crate::pipeline::run_pipeline_scratch_checked(
            func, target, self, tracer, check, scope, scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    #[test]
    fn coalesces_copy_chains_away() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let a = b.copy(p);
        let c = b.copy(a);
        let d = b.copy(c);
        b.ret(Some(d));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = ChaitinAllocator.allocate(&f, &target).unwrap();
        // Everything coalesces: param copy + 3 chain copies + ret copy.
        assert_eq!(out.stats.copies_remaining, 0);
        assert_eq!(out.stats.moves_eliminated, out.stats.copies_before);
        assert_eq!(out.stats.spill_instructions, 0);
    }

    #[test]
    fn spills_eagerly_under_pressure() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let vals: Vec<_> = (0..7).map(|i| b.load(p, 16 + 32 * i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.bin(BinOp::Add, acc, v);
        }
        b.ret(Some(acc));
        let f = b.finish();
        let target = TargetDesc::toy(4);
        let out = ChaitinAllocator.allocate(&f, &target).unwrap();
        assert!(out.stats.spill_instructions > 0);
        assert!(out.stats.rounds > 1);
    }
}
