//! A Lueh–Gross-style call-cost-directed allocator — "aggressive +
//! volatility" in the paper's Figure 11.
//!
//! Aggressive coalescing, then benefit-driven simplification (the
//! lowest-priority node is pushed first so important nodes are colored
//! early), a *preference decision* that caps how many live ranges may
//! claim non-volatile registers per call, and a select phase that chooses
//! between a volatile register, a non-volatile register, and memory by
//! comparing the benefit functions. Unlike the preference-directed
//! allocator, the decisions are static — made before any register is
//! selected — which is exactly the weakness §4 discusses.

use super::coalesce::{aggressive_coalesce, fold_spill_costs, propagate_merged};
use crate::node::NodeId;
use crate::pipeline::{
    run_pipeline, run_pipeline_traced, Analyses, ClassCtx, ClassStrategy, RoundOutcome,
};
use crate::{AllocError, AllocOutput, RegisterAllocator};
use pdgc_ir::Function;
use pdgc_obs::{with_span, Event, Phase, Tracer};
use pdgc_target::{PhysReg, TargetDesc};
use std::collections::HashMap;

/// The call-cost-directed allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct CallCostAllocator;

impl ClassStrategy for CallCostAllocator {
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome {
        let round = ctx.round as u32;
        let class = ctx.class;
        let k = ctx.k;
        with_span(tracer, Phase::Coalesce, round, Some(class), || {
            aggressive_coalesce(&mut ctx.ifg, &ctx.copies)
        });
        let mut costs = ctx.spill_costs.clone();
        fold_spill_costs(&ctx.ifg, &mut costs);

        // Benefit functions per representative (summed over members).
        let cost = ctx.cost_model(analyses);
        let nn = ctx.nodes.num_nodes();
        let mut benefit_vol = vec![0i64; nn];
        let mut benefit_nonvol = vec![0i64; nn];
        for n in ctx.nodes.live_range_nodes() {
            let r = ctx.ifg.rep(n);
            if ctx.nodes.is_precolored(r) {
                continue;
            }
            for &v in ctx.nodes.members(n) {
                benefit_vol[r.index()] += cost.strength_volatile(v, &[]);
                benefit_nonvol[r.index()] += cost.strength_nonvolatile(v, &[]);
            }
        }

        // Preference decision: per call, at most R live ranges may claim
        // non-volatile registers; the rest are annotated prefer-volatile.
        let num_nonvol = target.nonvolatiles(ctx.class).count();
        let mut force_volatile = vec![false; nn];
        let mut per_call: HashMap<(usize, usize), Vec<NodeId>> = HashMap::new();
        for n in ctx.nodes.live_range_nodes() {
            let r = ctx.ifg.rep(n);
            if ctx.nodes.is_precolored(r) {
                continue;
            }
            for &v in ctx.nodes.members(n) {
                for &(b, i) in analyses.crossings.sites(v) {
                    let entry = per_call.entry((b.index(), i)).or_default();
                    if !entry.contains(&r) {
                        entry.push(r);
                    }
                }
            }
        }
        for (_, mut reps) in per_call {
            reps.sort_by_key(|r| {
                std::cmp::Reverse(benefit_nonvol[r.index()] - benefit_vol[r.index()])
            });
            for &r in reps.iter().skip(num_nonvol) {
                force_volatile[r.index()] = true;
            }
        }

        // Benefit-driven simplification (Chaitin spill policy): among
        // low-degree nodes, push the lowest-priority first.
        let priority = |n: NodeId| benefit_vol[n.index()].max(benefit_nonvol[n.index()]);
        let mut stack: Vec<NodeId> = Vec::new();
        let mut chaitin_spills: Vec<NodeId> = Vec::new();
        with_span(tracer, Phase::Simplify, round, Some(class), || loop {
            let active = ctx.ifg.active_live_ranges();
            if active.is_empty() {
                break;
            }
            let low = active
                .iter()
                .copied()
                .filter(|&n| ctx.ifg.degree(n) < k)
                .min_by_key(|&n| (priority(n), n.index()));
            if let Some(n) = low {
                ctx.ifg.remove(n);
                stack.push(n);
                continue;
            }
            let cand = active
                .iter()
                .copied()
                .filter(|&n| costs[n.index()] != u64::MAX)
                .min_by(|&a, &b| {
                    let lhs = costs[a.index()] as u128 * ctx.ifg.degree(b) as u128;
                    let rhs = costs[b.index()] as u128 * ctx.ifg.degree(a) as u128;
                    lhs.cmp(&rhs).then(a.index().cmp(&b.index()))
                })
                .expect("call-cost: only unspillable nodes remain");
            ctx.ifg.remove(cand);
            chaitin_spills.push(cand);
        });

        let select_started = tracer.enabled().then(std::time::Instant::now);
        let mut assignment: Vec<Option<PhysReg>> = (0..nn)
            .map(|i| {
                let n = NodeId::new(i);
                ctx.nodes.is_precolored(n).then(|| ctx.nodes.phys_reg(n))
            })
            .collect();
        let mut spilled_reps: Vec<NodeId> = chaitin_spills;

        if spilled_reps.is_empty() {
            ctx.ifg.restore_all();
            for &n in stack.iter().rev() {
                let mut used = vec![false; k];
                for &x in ctx.ifg.neighbors_slice(n) {
                    if let Some(r) = assignment[x.index()] {
                        used[r.index()] = true;
                    }
                }
                let vol = target
                    .volatiles(ctx.class)
                    .find(|r| !used[r.index()]);
                let nonvol = target
                    .nonvolatiles(ctx.class)
                    .find(|r| !used[r.index()]);
                let unspillable = costs[n.index()] == u64::MAX;
                let choice = if force_volatile[n.index()] {
                    vol.or(nonvol)
                } else {
                    match (vol, nonvol) {
                        (Some(v), Some(nv)) => {
                            if benefit_nonvol[n.index()] > benefit_vol[n.index()] {
                                Some(nv)
                            } else {
                                Some(v)
                            }
                        }
                        (v, nv) => v.or(nv),
                    }
                };
                match choice {
                    Some(r) => {
                        // Active memory decision: a node whose best benefit
                        // is negative belongs in memory.
                        let best = if force_volatile[n.index()] {
                            benefit_vol[n.index()]
                        } else {
                            priority(n)
                        };
                        if best < 0 && !unspillable {
                            spilled_reps.push(n);
                        } else {
                            assignment[n.index()] = Some(r);
                        }
                    }
                    None => {
                        assert!(!unspillable, "call-cost select spilled a temporary");
                        spilled_reps.push(n);
                    }
                }
            }
        }

        propagate_merged(&ctx.ifg, &mut assignment);
        let mut spilled = Vec::new();
        for &s in &spilled_reps {
            for i in 0..nn {
                let n = NodeId::new(i);
                if ctx.ifg.rep(n) == s && !ctx.nodes.is_precolored(n) {
                    assignment[n.index()] = None;
                    spilled.push(n);
                }
            }
        }
        if let Some(t0) = select_started {
            tracer.record(&Event::Span {
                phase: Phase::Select,
                round,
                class: Some(class),
                nanos: t0.elapsed().as_nanos(),
            });
        }
        RoundOutcome { assignment, spilled }
    }
}

impl RegisterAllocator for CallCostAllocator {
    fn name(&self) -> &'static str {
        "aggressive+volatility"
    }

    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError> {
        run_pipeline(func, target, self)
    }

    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_traced(func, target, self, tracer)
    }

    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: crate::CheckMode,
        scope: crate::CheckScope,
        scratch: &mut crate::PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        crate::pipeline::run_pipeline_scratch_checked(
            func, target, self, tracer, check, scope, scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    #[test]
    fn call_crossing_value_gets_nonvolatile() {
        // The crossing value must not be copy-related to an argument
        // register (aggressive coalescing would absorb it into the
        // volatile precolored node — the very §4 pathology).
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let q = b.load(p, 0);
        b.call("g", vec![], None);
        b.call("g", vec![], None);
        let r = b.bin(BinOp::Add, q, q);
        b.ret(Some(r));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = CallCostAllocator.allocate(&f, &target).unwrap();
        // q crosses two calls: a non-volatile register avoids caller saves.
        assert_eq!(out.stats.caller_save_insts, 0);
        assert!(out.stats.nonvolatiles_used >= 1);
        assert_eq!(out.stats.spill_instructions, 0);
    }

    #[test]
    fn non_crossing_values_stay_volatile() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, p);
        let y = b.bin(BinOp::Mul, x, p);
        b.ret(Some(y));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = CallCostAllocator.allocate(&f, &target).unwrap();
        assert_eq!(out.stats.nonvolatiles_used, 0);
    }
}
