//! Shared coalescing machinery for the baseline allocators.

use crate::build::CopyRel;
use crate::ifg::InterferenceGraph;
use crate::node::{NodeId, NodeMap};
use pdgc_target::{PhysReg, TargetDesc};

/// Aggressive (Chaitin-style) coalescing: merges every copy-related pair
/// that does not interfere, iterating to a fixpoint. Returns the number of
/// merges performed.
pub fn aggressive_coalesce(ifg: &mut InterferenceGraph, copies: &[CopyRel]) -> usize {
    let mut merges = 0;
    loop {
        let mut merged_this_pass = false;
        for c in copies {
            let a = ifg.rep(c.dst);
            let b = ifg.rep(c.src);
            if a == b || ifg.interferes(a, b) {
                continue;
            }
            // Precolored nodes absorb; two precolored nodes always
            // interfere (distinct registers), so at most one is precolored.
            if ifg.is_precolored(b) {
                ifg.merge(b, a);
            } else {
                ifg.merge(a, b);
            }
            merges += 1;
            merged_this_pass = true;
        }
        if !merged_this_pass {
            return merges;
        }
    }
}

/// Briggs' conservative criterion: merging `a` and `b` is safe if the
/// combined node would have fewer than `k` neighbors of significant degree.
pub fn briggs_conservative_ok(ifg: &InterferenceGraph, a: NodeId, b: NodeId, k: usize) -> bool {
    let (a, b) = (ifg.rep(a), ifg.rep(b));
    let mut combined = ifg.neighbors(a);
    for &x in ifg.neighbors_slice(b) {
        if !combined.contains(&x) {
            combined.push(x);
        }
    }
    let both = |x: NodeId| ifg.interferes(x, a) && ifg.interferes(x, b);
    let significant = combined
        .iter()
        .filter(|&&x| {
            let d = if both(x) {
                ifg.degree(x).saturating_sub(1)
            } else {
                ifg.degree(x)
            };
            d >= k
        })
        .count();
    significant < k
}

/// George's criterion for merging `b` into `a` (useful when `a` is
/// precolored): every neighbor of `b` either already interferes with `a`
/// or has insignificant degree.
pub fn george_ok(ifg: &InterferenceGraph, a: NodeId, b: NodeId, k: usize) -> bool {
    let (a, b) = (ifg.rep(a), ifg.rep(b));
    ifg.neighbors_slice(b)
        .iter()
        .all(|&t| t == a || ifg.interferes(t, a) || ifg.degree(t) < k)
}

/// Folds the spill costs of merged nodes into their representatives
/// (`u64::MAX` members poison the representative).
pub fn fold_spill_costs(ifg: &InterferenceGraph, costs: &mut [u64]) {
    for i in 0..costs.len() {
        let n = NodeId::new(i);
        if ifg.is_merged(n) {
            let r = ifg.rep(n).index();
            costs[r] = costs[r].saturating_add(costs[i]);
            if costs[i] == u64::MAX {
                costs[r] = u64::MAX;
            }
        }
    }
}

/// Chaitin/Briggs select: pops `stack` in reverse (last removed first) and
/// gives each node a register distinct from its colored neighbors.
///
/// `bias` enables Briggs' biased coloring: if a copy-related partner is
/// already colored and its register is available, take it. When no bias
/// applies, picks the first free non-volatile register if
/// `nonvolatile_first`, the lowest index otherwise. Nodes with no free
/// register are returned as spilled.
pub fn color_stack(
    ifg: &InterferenceGraph,
    nodes: &NodeMap,
    stack: &[NodeId],
    target: &TargetDesc,
    bias: Option<&[CopyRel]>,
    nonvolatile_first: bool,
) -> (Vec<Option<PhysReg>>, Vec<NodeId>) {
    let mut assignment: Vec<Option<PhysReg>> = (0..nodes.num_nodes())
        .map(|i| {
            let n = NodeId::new(i);
            nodes.is_precolored(n).then(|| nodes.phys_reg(n))
        })
        .collect();
    let mut spilled = Vec::new();
    for &n in stack.iter().rev() {
        let mut used = vec![false; target.num_regs(nodes.class())];
        for &x in ifg.neighbors_slice(n) {
            if let Some(r) = assignment[x.index()] {
                used[r.index()] = true;
            }
        }
        let avail: Vec<PhysReg> = target
            .regs(nodes.class())
            .filter(|r| !used[r.index()])
            .collect();
        if avail.is_empty() {
            spilled.push(n);
            continue;
        }
        let mut choice = None;
        if let Some(copies) = bias {
            // Biased coloring: prefer a copy partner's register.
            for c in copies {
                let (x, y) = (ifg.rep(c.dst), ifg.rep(c.src));
                let partner = if x == n {
                    y
                } else if y == n {
                    x
                } else {
                    continue;
                };
                if let Some(r) = assignment[partner.index()] {
                    if avail.contains(&r) {
                        choice = Some(r);
                        break;
                    }
                }
            }
        }
        let reg = choice.unwrap_or_else(|| {
            if nonvolatile_first {
                avail
                    .iter()
                    .copied()
                    .find(|&r| !target.is_volatile(r))
                    .unwrap_or(avail[0])
            } else {
                avail[0]
            }
        });
        assignment[n.index()] = Some(reg);
    }
    (assignment, spilled)
}

/// Copies each merged node's representative assignment onto the member
/// node so the pipeline can map member vregs.
pub fn propagate_merged(ifg: &InterferenceGraph, assignment: &mut [Option<PhysReg>]) {
    for i in 0..assignment.len() {
        let n = NodeId::new(i);
        if ifg.is_merged(n) && assignment[i].is_none() {
            assignment[i] = assignment[ifg.rep(n).index()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::Block;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn copy(dst: usize, src: usize) -> CopyRel {
        CopyRel {
            dst: n(dst),
            src: n(src),
            freq: 1,
            block: Block::ENTRY,
            index: 0,
        }
    }

    #[test]
    fn aggressive_merges_chains() {
        let mut g = InterferenceGraph::new(4, 0);
        g.add_edge(n(0), n(3));
        let copies = vec![copy(1, 0), copy(2, 1)];
        let merges = aggressive_coalesce(&mut g, &copies);
        assert_eq!(merges, 2);
        assert_eq!(g.rep(n(2)), g.rep(n(0)));
        assert!(g.interferes(n(2), n(3)));
    }

    #[test]
    fn aggressive_respects_interference() {
        let mut g = InterferenceGraph::new(2, 0);
        g.add_edge(n(0), n(1));
        assert_eq!(aggressive_coalesce(&mut g, &[copy(0, 1)]), 0);
    }

    #[test]
    fn aggressive_absorbs_into_precolored() {
        let mut g = InterferenceGraph::new(3, 2);
        let merges = aggressive_coalesce(&mut g, &[copy(2, 0)]);
        assert_eq!(merges, 1);
        assert_eq!(g.rep(n(2)), n(0));
    }

    #[test]
    fn briggs_criterion() {
        // a-b copy related; shared neighbor x with high degree.
        let mut g = InterferenceGraph::new(6, 0);
        // x (node 2) neighbors: a, b, 3, 4 → degree 4.
        for t in [0, 1, 3, 4] {
            g.add_edge(n(2), n(t));
        }
        // With k=2 the combined node sees x at degree 3 (shared) >= 2:
        // one significant neighbor < k=2? 1 < 2 → ok.
        assert!(briggs_conservative_ok(&g, n(0), n(1), 2));
        // With k=1, 1 significant neighbor is not < 1 → reject.
        assert!(!briggs_conservative_ok(&g, n(0), n(1), 1));
    }

    #[test]
    fn george_criterion() {
        let mut g = InterferenceGraph::new(5, 1);
        // b=2 has neighbors 3 (degree 1, low) and 4.
        g.add_edge(n(2), n(3));
        g.add_edge(n(2), n(4));
        g.add_edge(n(4), n(0)); // 4 interferes with a=0
        assert!(george_ok(&g, n(0), n(2), 2));
        // Raising 3's degree makes it significant while still not
        // interfering with a=0, so the criterion must reject.
        g.add_edge(n(3), n(4));
        assert!(!george_ok(&g, n(0), n(2), 2));
    }

    #[test]
    fn george_criterion_rejects() {
        let mut g = InterferenceGraph::new(5, 1);
        g.add_edge(n(2), n(3));
        g.add_edge(n(3), n(4)); // 3: degree 2, significant for k=2
        assert!(!george_ok(&g, n(0), n(2), 2));
    }

    #[test]
    fn color_stack_gives_distinct_neighbors_distinct_regs() {
        use pdgc_ir::{FunctionBuilder, RegClass};
        let mut b = FunctionBuilder::new("t", vec![], None);
        let base = b.iconst(0);
        let x = b.load(base, 128);
        let y = b.load(base, 256);
        b.store(x, base, 0);
        b.store(y, base, 0);
        b.ret(None);
        let f = b.finish();
        let target = TargetDesc::figure7();
        let pinned = vec![None; f.num_vregs()];
        let nm = NodeMap::build(&f, &target, pdgc_ir::RegClass::Int, &pinned);
        let _ = RegClass::Int;
        let mut g = InterferenceGraph::new(nm.num_nodes(), nm.num_phys());
        g.add_edge(n(3), n(4));
        g.add_edge(n(3), n(5));
        g.add_edge(n(4), n(5));
        let stack = vec![n(3), n(4), n(5)];
        let (assignment, spilled) = color_stack(&g, &nm, &stack, &target, None, false);
        assert!(spilled.is_empty());
        let regs: Vec<_> = (3..6).map(|i| assignment[i].unwrap()).collect();
        let mut d = regs.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn fold_costs_accumulates() {
        let mut g = InterferenceGraph::new(3, 0);
        g.merge(n(0), n(1));
        let mut costs = vec![10, 20, 30];
        fold_spill_costs(&g, &mut costs);
        assert_eq!(costs[0], 30);
        assert_eq!(costs[2], 30);
    }
}
