//! Chow–Hennessy-style priority-based coloring — the *other* coloring
//! school the paper contrasts against in §7.
//!
//! Where Chaitin's simplification "favors packing live ranges", priority-
//! based coloring "favors allocating more live ranges with higher
//! priority though that may use more colors": live ranges are visited in
//! order of decreasing priority — the frequency-weighted memory-access
//! savings of register residence, normalized by the range's size — and
//! each takes any register its already-colored neighbors leave free.
//!
//! This implementation is deliberately simplified relative to the 1990
//! TOPLAS paper: blocked live ranges are spilled everywhere rather than
//! split (the pipeline's spill iteration stands in for live-range
//! splitting). That preserves the §7 contrast the `extras` harness
//! measures — the priority order's indifference to packing.

use super::coalesce::{aggressive_coalesce, fold_spill_costs, propagate_merged};
use crate::node::NodeId;
use crate::pipeline::{
    run_pipeline, run_pipeline_traced, Analyses, ClassCtx, ClassStrategy, RoundOutcome,
};
use crate::{AllocError, AllocOutput, RegisterAllocator};
use pdgc_ir::{Function, VReg};
use pdgc_obs::{with_span, Event, Phase, Tracer};
use pdgc_target::{PhysReg, TargetDesc};

/// The priority-based allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct PriorityAllocator;

impl ClassStrategy for PriorityAllocator {
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome {
        let round = ctx.round as u32;
        let class = ctx.class;
        // Copy coalescing as in the other baselines (priority-based
        // allocators in practice ran after copy propagation).
        with_span(tracer, Phase::Coalesce, round, Some(class), || {
            aggressive_coalesce(&mut ctx.ifg, &ctx.copies)
        });
        let mut costs = ctx.spill_costs.clone();
        fold_spill_costs(&ctx.ifg, &mut costs);
        let select_started = tracer.enabled().then(std::time::Instant::now);

        // Live-range "area": the number of instruction points each node's
        // members are live across.
        let nn = ctx.nodes.num_nodes();
        let mut area = vec![0u64; nn];
        for b in ctx.func.block_ids() {
            analyses
                .liveness
                .for_each_inst_backward(ctx.func, b, |_, _, live| {
                    for v in live.iter() {
                        if let Some(n) = ctx.nodes.node_of(VReg::new(v)) {
                            area[ctx.ifg.rep(n).index()] += 1;
                        }
                    }
                });
        }

        // Priority: savings per unit of live range. Unspillable
        // temporaries go first (they must get registers).
        let priority = |n: NodeId| -> (u8, u64) {
            let c = costs[n.index()];
            if c == u64::MAX {
                return (1, u64::MAX);
            }
            // Scale to keep integer precision.
            (0, c.saturating_mul(1024) / area[n.index()].max(1))
        };
        let mut order: Vec<NodeId> = ctx
            .ifg
            .active_live_ranges()
            .into_iter()
            .collect();
        order.sort_by_key(|&n| {
            let (tier, p) = priority(n);
            (std::cmp::Reverse(tier), std::cmp::Reverse(p), n.index())
        });

        let mut assignment: Vec<Option<PhysReg>> = (0..nn)
            .map(|i| {
                let n = NodeId::new(i);
                ctx.nodes.is_precolored(n).then(|| ctx.nodes.phys_reg(n))
            })
            .collect();
        let mut spilled_reps = Vec::new();
        for &n in &order {
            let mut used = vec![false; ctx.k];
            for &x in ctx.ifg.neighbors_slice(n) {
                if let Some(r) = assignment[x.index()] {
                    used[r.index()] = true;
                }
            }
            let choice = target
                .nonvolatiles(ctx.class)
                .find(|r| !used[r.index()])
                .or_else(|| target.regs(ctx.class).find(|r| !used[r.index()]));
            match choice {
                Some(r) => assignment[n.index()] = Some(r),
                None => {
                    assert!(
                        costs[n.index()] != u64::MAX,
                        "priority coloring spilled a temporary"
                    );
                    spilled_reps.push(n);
                }
            }
        }

        propagate_merged(&ctx.ifg, &mut assignment);
        let mut spilled = Vec::new();
        for &s in &spilled_reps {
            for i in 0..nn {
                let n = NodeId::new(i);
                if ctx.ifg.rep(n) == s && !ctx.nodes.is_precolored(n) {
                    assignment[n.index()] = None;
                    spilled.push(n);
                }
            }
        }
        if let Some(t0) = select_started {
            tracer.record(&Event::Span {
                phase: Phase::Select,
                round,
                class: Some(class),
                nanos: t0.elapsed().as_nanos(),
            });
        }
        RoundOutcome { assignment, spilled }
    }
}

impl RegisterAllocator for PriorityAllocator {
    fn name(&self) -> &'static str {
        "priority-based"
    }

    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError> {
        run_pipeline(func, target, self)
    }

    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_traced(func, target, self, tracer)
    }

    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: crate::CheckMode,
        scope: crate::CheckScope,
        scratch: &mut crate::PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        crate::pipeline::run_pipeline_scratch_checked(
            func, target, self, tracer, check, scope, scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    #[test]
    fn allocates_simple_functions() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, p);
        b.ret(Some(x));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = PriorityAllocator.allocate(&f, &target).unwrap();
        assert_eq!(out.stats.spill_instructions, 0);
    }

    #[test]
    fn high_priority_loop_values_colored_first() {
        // A loop-resident value and a cold value compete for one register:
        // the hot one must win the register, the cold one spills.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let cold = b.load(p, 0);
        let hot = b.load(p, 8);
        let i = b.bin_imm(BinOp::Add, p, 3);
        b.jump(header);
        b.switch_to(header);
        b.branch_imm(CmpOp::Gt, i, 0, body, exit);
        b.switch_to(body);
        b.store(hot, p, 64); // hot used every iteration
        b.emit(pdgc_ir::Inst::BinImm {
            op: BinOp::Sub,
            dst: i,
            lhs: i,
            imm: 1,
        });
        b.jump(header);
        b.switch_to(exit);
        let s = b.bin(BinOp::Add, hot, cold);
        b.ret(Some(s));
        let f = b.finish();
        // 3 registers: p/i/hot/cold cannot all fit.
        let target = TargetDesc::toy(3);
        let out = PriorityAllocator.allocate(&f, &target).unwrap();
        // The hot value stayed in a register across the loop (no reload
        // inside the loop body block).
        let body_spills = out.mach.blocks[2]
            .iter()
            .filter(|i| i.is_spill_traffic())
            .count();
        assert_eq!(body_spills, 0, "hot loop value must not spill");
        assert!(out.stats.spill_instructions > 0, "the cold value spills");
    }
}
