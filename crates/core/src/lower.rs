//! ABI lowering: routing parameters, call arguments, and return values
//! through the calling convention's dedicated registers.
//!
//! Lowering inserts explicit copies to and from *pinned* virtual registers
//! (one per physical register used by the convention). These copies are the
//! source of the paper's first preference type — dedicated register usage —
//! and the copies a good allocator coalesces away (§3.1, §6.2: "useless
//! copying of parameters and return values").
//!
//! On targets with a dedicated division register
//! ([`TargetDesc::div_reg`]), integer `div` results are likewise routed
//! through a pinned register — the paper's x86 example of dedicated
//! operation registers.

use pdgc_ir::{lower_phis, Function, Inst, RegClass, VReg};
use pdgc_target::{PhysReg, TargetDesc};
use std::collections::HashMap;
use std::fmt;

/// A function after ABI lowering, with its pinned-register map.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The lowered function (φs eliminated, calls routed through pinned
    /// registers).
    pub func: Function,
    /// For each vreg, the physical register it is pinned to, if any.
    pub pinned: Vec<Option<PhysReg>>,
}

impl Lowered {
    /// Grows the pinned table to cover vregs created after lowering
    /// (spill temporaries); new entries are unpinned.
    pub fn sync_pinned_len(&mut self) {
        self.pinned.resize(self.func.num_vregs(), None);
    }
}

/// An error produced by [`lower_abi`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// A call site (or the function itself) needs more argument registers
    /// of a class than the convention provides.
    TooManyArgs {
        /// The function whose lowering failed.
        func: String,
        /// The class that ran out of argument registers.
        class: RegClass,
        /// How many arguments of that class were requested.
        wanted: usize,
        /// How many registers the convention has.
        available: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::TooManyArgs {
                func,
                class,
                wanted,
                available,
            } => write!(
                f,
                "lowering {func}: {wanted} {class} arguments but only {available} argument registers (stack passing is not modeled)"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers `func` against `target`'s calling convention.
///
/// * φ-functions are lowered to copies first;
/// * a copy from the pinned argument register is prepended for each
///   parameter;
/// * every call's arguments are copied into pinned argument registers and
///   its result copied out of the pinned return register;
/// * every returned value is copied into the pinned return register.
///
/// # Errors
///
/// Returns [`LowerError::TooManyArgs`] when a signature or call site
/// exceeds the convention's argument registers.
pub fn lower_abi(func: &Function, target: &TargetDesc) -> Result<Lowered, LowerError> {
    let mut f = func.clone();
    lower_phis(&mut f);

    let mut pinned_vreg: HashMap<PhysReg, VReg> = HashMap::new();
    let name = f.name.clone();

    // Split borrows: allocate pinned vregs through a closure over a local
    // table, then rebuild the pinned vector at the end.
    let get_pinned = {
        move |f: &mut Function, reg: PhysReg, table: &mut HashMap<PhysReg, VReg>| -> VReg {
            *table
                .entry(reg)
                .or_insert_with(|| f.new_vreg(reg.class()))
        }
    };

    // Assign argument registers for a list of value classes, per-class
    // indexed. Returns one register per argument.
    let assign_args = |f_name: &str, classes: &[RegClass]| -> Result<Vec<PhysReg>, LowerError> {
        let mut counts = [0usize; 2];
        let mut out = Vec::with_capacity(classes.len());
        for &c in classes {
            let i = counts[c.index()];
            counts[c.index()] += 1;
            match target.arg_reg(c, i) {
                Some(r) => out.push(r),
                None => {
                    return Err(LowerError::TooManyArgs {
                        func: f_name.to_string(),
                        class: c,
                        wanted: counts[c.index()],
                        available: target.num_arg_regs(c),
                    })
                }
            }
        }
        Ok(out)
    };

    // Parameters: entry-block copies from pinned argument registers.
    let param_regs = assign_args(&name, &func.sig.params)?;
    let mut entry_copies = Vec::new();
    for (i, &reg) in param_regs.iter().enumerate() {
        let src = get_pinned(&mut f, reg, &mut pinned_vreg);
        entry_copies.push(Inst::Copy {
            dst: f.param_vregs[i],
            src,
        });
    }

    // Resolve every call's argument registers up front. This is the only
    // fallible step of the block rewrite, and running it before any
    // instruction list is `mem::take`n below means no `?` can fire while a
    // block's instructions sit outside the function — an early return
    // there would silently drop the taken buffer and leave the block
    // empty.
    let mut call_regs: Vec<Vec<PhysReg>> = Vec::new();
    for bi in 0..f.num_blocks() {
        for inst in &f.blocks[bi].insts {
            if let Inst::Call { args, .. } = inst {
                let classes: Vec<RegClass> = args.iter().map(|&a| f.class_of(a)).collect();
                call_regs.push(assign_args(&name, &classes)?);
            }
        }
    }
    let mut call_regs = call_regs.into_iter();

    // Calls and returns.
    for bi in 0..f.num_blocks() {
        let b = pdgc_ir::Block::new(bi);
        // Infallible from here to the write-back: see the pre-pass above.
        let old = std::mem::take(&mut f.blocks[bi].insts);
        let mut new = Vec::with_capacity(old.len());
        if b == pdgc_ir::Block::ENTRY {
            new.extend(entry_copies.iter().cloned());
        }
        for inst in old {
            match inst {
                Inst::Call { callee, args, ret } => {
                    let regs = call_regs.next().expect("counted in the pre-pass");
                    let mut pinned_args = Vec::with_capacity(args.len());
                    for (&a, &r) in args.iter().zip(&regs) {
                        let dst = get_pinned(&mut f, r, &mut pinned_vreg);
                        new.push(Inst::Copy { dst, src: a });
                        pinned_args.push(dst);
                    }
                    match ret {
                        Some(r) => {
                            let reg = target.ret_reg(f.class_of(r));
                            let p = get_pinned(&mut f, reg, &mut pinned_vreg);
                            new.push(Inst::Call {
                                callee,
                                args: pinned_args,
                                ret: Some(p),
                            });
                            new.push(Inst::Copy { dst: r, src: p });
                        }
                        None => new.push(Inst::Call {
                            callee,
                            args: pinned_args,
                            ret: None,
                        }),
                    }
                }
                Inst::Ret { value: Some(v) } => {
                    let reg = target.ret_reg(f.class_of(v));
                    let p = get_pinned(&mut f, reg, &mut pinned_vreg);
                    new.push(Inst::Copy { dst: p, src: v });
                    new.push(Inst::Ret { value: Some(p) });
                }
                Inst::Bin {
                    op: pdgc_ir::BinOp::Div,
                    dst,
                    lhs,
                    rhs,
                } if target.div_reg.is_some() => {
                    // Dedicated division register: produce the quotient in
                    // the pinned register and copy it out.
                    let reg = target.div_reg.expect("guarded");
                    let p = get_pinned(&mut f, reg, &mut pinned_vreg);
                    new.push(Inst::Bin {
                        op: pdgc_ir::BinOp::Div,
                        dst: p,
                        lhs,
                        rhs,
                    });
                    new.push(Inst::Copy { dst, src: p });
                }
                other => new.push(other),
            }
        }
        f.blocks[bi].insts = new;
    }

    let mut pinned = vec![None; f.num_vregs()];
    for (reg, v) in pinned_vreg {
        pinned[v.index()] = Some(reg);
    }
    Ok(Lowered { func: f, pinned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder};
    use pdgc_target::PressureModel;

    #[test]
    fn params_and_ret_routed() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, p);
        b.ret(Some(x));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let lo = lower_abi(&f, &target).unwrap();
        assert!(lo.func.verify().is_ok());
        // Entry now starts with a copy from the pinned arg register.
        let first = &lo.func.blocks[0].insts[0];
        let (dst, src) = first.as_copy().unwrap();
        assert_eq!(dst, p);
        assert_eq!(lo.pinned[src.index()], Some(PhysReg::int(0)));
        // The ret now returns the pinned return vreg.
        let last = lo.func.blocks[0].insts.last().unwrap();
        match last {
            Inst::Ret { value: Some(v) } => {
                assert_eq!(lo.pinned[v.index()], Some(PhysReg::int(0)));
            }
            other => panic!("expected ret, got {other:?}"),
        }
    }

    #[test]
    fn call_args_routed_per_class() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Float], Some(RegClass::Int));
        let q = b.param(0);
        let i = b.iconst(7);
        let r = b
            .call("g", vec![i, q], Some(RegClass::Int))
            .unwrap();
        b.ret(Some(r));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let lo = lower_abi(&f, &target).unwrap();
        assert!(lo.func.verify().is_ok());
        // Find the call; its args must be pinned to r0 and f0 (first int
        // and float argument registers).
        let call = lo.func.blocks[0]
            .insts
            .iter()
            .find(|i| i.is_call())
            .unwrap();
        if let Inst::Call { args, ret, .. } = call {
            assert_eq!(lo.pinned[args[0].index()], Some(PhysReg::int(0)));
            assert_eq!(lo.pinned[args[1].index()], Some(PhysReg::float(0)));
            assert_eq!(lo.pinned[ret.unwrap().index()], Some(PhysReg::int(0)));
        }
        // Copies inserted: 1 param + 2 args + 1 ret-out + 1 ret-in = 5.
        assert_eq!(lo.func.num_copies(), 5);
    }

    #[test]
    fn too_many_args_rejected() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let args: Vec<_> = (0..9).map(|i| b.iconst(i)).collect();
        b.call("g", args, None);
        b.ret(None);
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let err = lower_abi(&f, &target).unwrap_err();
        assert!(matches!(err, LowerError::TooManyArgs { wanted: 9, .. }));
        assert!(err.to_string().contains("9 int arguments"));
    }

    #[test]
    fn too_many_args_in_a_later_block_reports_the_same_error() {
        // Regression: the fallible argument-register resolution used to
        // run mid-rewrite, after earlier blocks' instruction lists had
        // been taken out, so a failure abandoned the rewrite half-done
        // with the current block emptied. The pre-pass must report the
        // identical error no matter where the bad call sits.
        let build = |call_in_second_block: bool| {
            let mut b = FunctionBuilder::new("f", vec![], None);
            let args: Vec<_> = (0..9).map(|i| b.iconst(i)).collect();
            if call_in_second_block {
                let next = b.create_block();
                b.jump(next);
                b.switch_to(next);
            }
            b.call("g", args, None);
            b.ret(None);
            b.finish()
        };
        let target = TargetDesc::ia64_like(PressureModel::High);
        let e1 = lower_abi(&build(false), &target).unwrap_err();
        let e2 = lower_abi(&build(true), &target).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(e1, LowerError::TooManyArgs { wanted: 9, .. }));
    }

    #[test]
    fn repeated_call_sites_share_pinned_vregs() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let x = b.iconst(1);
        b.call("g", vec![x], None);
        b.call("g", vec![x], None);
        b.ret(None);
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let lo = lower_abi(&f, &target).unwrap();
        let pinned_count = lo.pinned.iter().filter(|p| p.is_some()).count();
        assert_eq!(pinned_count, 1); // both sites use the same r0-pinned vreg
    }
}
