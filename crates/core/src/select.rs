//! The integrated, preference-directed select phase — §5.3 of the paper.
//!
//! Select walks the ready frontier of the [`Cpg`]: at each step it
//!
//! 1. evaluates every frontier node's honorable preferences against prior
//!    register selections (paper steps 2.1–2.3),
//! 2. picks the node with the largest *strength differential* — the node
//!    with the most at stake between its best and worst register choice
//!    (step 3),
//! 3. assigns it a register by screening the available set through its
//!    preferences, strongest first (steps 4.1–4.4), reserving registers
//!    that not-yet-allocated preference partners will need (step 4.3),
//!    spilling when no register is available — or *actively* when the
//!    node's strongest preference is to live in memory (§5.4),
//! 4. releases its CPG successors (step 5).
//!
//! Spill decisions, coalescing (same-register selection), and every
//! preference type are thereby resolved simultaneously.

use crate::cpg::Cpg;
use crate::ifg::InterferenceGraph;
use crate::node::{NodeId, NodeMap};
use crate::rpg::{PrefKind, PrefTarget, Preference, Rpg};
use pdgc_obs::{Considered, Decision, Event, NoopTracer, SpillReason, Tracer, Verdict};
use pdgc_target::{PhysReg, TargetDesc};

/// Tunables for the select phase.
#[derive(Clone, Copy, Debug)]
pub struct SelectConfig {
    /// Spill a node whose strongest preference is negative (it prefers
    /// memory). Enabled by the full-preference allocator, disabled in
    /// coalescing-only mode.
    pub active_spill: bool,
    /// When no preference discriminates among the remaining candidates,
    /// pick the lowest-index non-volatile register first (the "simple
    /// heuristic" the paper gives preference-unaware allocators); otherwise
    /// pick the lowest index overall.
    pub nonvolatile_first: bool,
}

impl Default for SelectConfig {
    fn default() -> Self {
        SelectConfig {
            active_spill: true,
            nonvolatile_first: false,
        }
    }
}

/// The outcome of selection for one class.
#[derive(Clone, Debug)]
pub struct SelectResult {
    /// Register per node (precolored nodes prefilled; `None` = spilled or
    /// not part of this universe).
    pub assignment: Vec<Option<PhysReg>>,
    /// Live-range nodes that must be spilled.
    pub spilled: Vec<NodeId>,
}

/// Runs preference-directed selection over one class.
///
/// `no_spill[n]` marks spill temporaries that must receive registers.
///
/// # Panics
///
/// Panics if the CPG is cyclic (cannot happen for graphs built by
/// [`Cpg::build`]).
pub fn select(
    ifg: &InterferenceGraph,
    nodes: &NodeMap,
    rpg: &Rpg,
    cpg: &Cpg,
    target: &TargetDesc,
    no_spill: &[bool],
    config: SelectConfig,
) -> SelectResult {
    select_traced(ifg, nodes, rpg, cpg, target, no_spill, &[], config, 1, &mut NoopTracer)
}

/// [`select`] with an attached [`Tracer`]: emits one [`Decision`] event
/// per node resolved — the ready-frontier size, the strength differential,
/// every preference screened with its strength, and the verdict (register
/// or spill with its cost).
///
/// `spill_costs` (per node, `u64::MAX` = unspillable) only feeds the spill
/// verdicts in the trace; pass `&[]` when untraced. `round` labels the
/// events with the pipeline's spill round.
///
/// # Panics
///
/// Same as [`select`].
#[allow(clippy::too_many_arguments)]
pub fn select_traced(
    ifg: &InterferenceGraph,
    nodes: &NodeMap,
    rpg: &Rpg,
    cpg: &Cpg,
    target: &TargetDesc,
    no_spill: &[bool],
    spill_costs: &[u64],
    config: SelectConfig,
    round: u32,
    tracer: &mut dyn Tracer,
) -> SelectResult {
    // Reverse preference index: rev_pref[m] holds the nodes with a
    // preference targeting (the representative of) m. Assigning m makes
    // exactly those nodes' differentials stale.
    let mut rev_pref: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.num_nodes()];
    for i in 0..nodes.num_nodes() {
        let holder = NodeId::new(i);
        for pref in rpg.prefs(holder) {
            if let PrefTarget::Node(m) = pref.target {
                rev_pref[ifg.rep(m).index()].push(holder);
            }
        }
    }
    Selector {
        ifg,
        nodes,
        rpg,
        cpg,
        target,
        no_spill,
        spill_costs,
        config,
        round,
        assignment: (0..nodes.num_nodes())
            .map(|i| {
                let n = NodeId::new(i);
                nodes.is_precolored(n).then(|| nodes.phys_reg(n))
            })
            .collect(),
        spilled: vec![false; nodes.num_nodes()],
        processed: vec![false; nodes.num_nodes()],
        rev_pref,
        diff_cache: vec![0; nodes.num_nodes()],
        diff_dirty: vec![true; nodes.num_nodes()],
        used_scratch: Vec::new(),
    }
    .run(tracer)
}

struct Selector<'a> {
    ifg: &'a InterferenceGraph,
    nodes: &'a NodeMap,
    rpg: &'a Rpg,
    cpg: &'a Cpg,
    target: &'a TargetDesc,
    no_spill: &'a [bool],
    spill_costs: &'a [u64],
    config: SelectConfig,
    round: u32,
    assignment: Vec<Option<PhysReg>>,
    spilled: Vec<bool>,
    processed: Vec<bool>,
    /// `rev_pref[m]`: nodes holding a preference that targets `m`'s
    /// representative.
    rev_pref: Vec<Vec<NodeId>>,
    /// Cached step-3 strength differential per node; valid while the
    /// matching `diff_dirty` bit is clear.
    diff_cache: Vec<i64>,
    diff_dirty: Vec<bool>,
    /// Reusable register-occupancy scratch for the differential scan,
    /// owned by the selector so the frontier loop never allocates.
    used_scratch: Vec<bool>,
}

/// One honorable preference: the registers that honor it and the strength
/// of doing so (per register kind, resolved per register).
struct Honorable {
    pref: Preference,
    regs: Vec<PhysReg>,
}

impl Selector<'_> {
    fn run(mut self, tracer: &mut dyn Tracer) -> SelectResult {
        let mut pred_remaining: Vec<usize> = (0..self.nodes.num_nodes())
            .map(|i| self.cpg.preds(NodeId::new(i)).len())
            .collect();
        let mut queue: Vec<NodeId> = self.cpg.initial_queue();
        let total: usize = self.cpg.nodes().count();
        let mut done = 0;

        while !queue.is_empty() {
            // Step 3: the frontier node with the largest differential
            // (lowest node id on ties). Differentials are cached and only
            // recomputed for nodes an assignment actually invalidated —
            // an interference neighbor or preference holder of the
            // assigned node — so a steady-state step touches the scratch
            // buffers of the few dirty frontier nodes instead of
            // re-deriving every frontier member from scratch.
            let mut best: Option<(usize, i64)> = None;
            for i in 0..queue.len() {
                let n = queue[i];
                let d = self.cached_differential(n);
                let better = match best {
                    None => true,
                    Some((bi, bd)) => d > bd || (d == bd && n.index() < queue[bi].index()),
                };
                if better {
                    best = Some((i, d));
                }
            }
            let (qi, differential) = best.expect("non-empty queue");
            let frontier = queue.len() as u32;
            let n = queue.swap_remove(qi);

            self.allocate(n, frontier, differential, tracer);
            self.processed[n.index()] = true;
            done += 1;

            // Step 5: release successors.
            for &s in self.cpg.succs(n) {
                pred_remaining[s.index()] -= 1;
                if pred_remaining[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(done, total, "CPG must drain completely (acyclic)");

        let spilled = (0..self.nodes.num_nodes())
            .map(NodeId::new)
            .filter(|n| self.spilled[n.index()])
            .collect();
        SelectResult {
            assignment: self.assignment,
            spilled,
        }
    }

    /// Registers not used by already-allocated interference neighbors.
    fn available(&self, n: NodeId) -> Vec<PhysReg> {
        let mut used = vec![false; self.target.num_regs(self.nodes.class())];
        for &x in self.ifg.neighbors_slice(n) {
            if let Some(r) = self.assignment[x.index()] {
                used[r.index()] = true;
            }
        }
        self.target
            .regs(self.nodes.class())
            .filter(|r| !used[r.index()])
            .collect()
    }

    /// Steps 2.1–2.2: the preferences of `n` that prior selections still
    /// allow, with their honoring register sets within `avail`.
    fn honorable_prefs(&self, n: NodeId, avail: &[PhysReg]) -> Vec<Honorable> {
        let mut out = Vec::new();
        for &pref in self.rpg.prefs(n) {
            let regs: Vec<PhysReg> = match pref.target {
                PrefTarget::Volatile => avail
                    .iter()
                    .copied()
                    .filter(|&r| self.target.is_volatile(r))
                    .collect(),
                PrefTarget::NonVolatile => avail
                    .iter()
                    .copied()
                    .filter(|&r| !self.target.is_volatile(r))
                    .collect(),
                PrefTarget::Set(mask) => avail
                    .iter()
                    .copied()
                    .filter(|&r| r.index() < 64 && (mask >> r.index()) & 1 == 1)
                    .collect(),
                PrefTarget::Node(m) => {
                    // Resolve through coalesced representatives (pre-
                    // coalescing merges nodes before selection).
                    let m = self.ifg.rep(m);
                    let Some(partner) = self.assignment[m.index()] else {
                        continue; // unallocated or spilled: deferred (2.2)
                    };
                    match pref.kind {
                        PrefKind::Coalesce => avail
                            .iter()
                            .copied()
                            .filter(|&r| r == partner)
                            .collect(),
                        PrefKind::SequentialPlus => avail
                            .iter()
                            .copied()
                            .filter(|&r| self.target.pair_allows(r, partner))
                            .collect(),
                        PrefKind::SequentialMinus => avail
                            .iter()
                            .copied()
                            .filter(|&r| self.target.pair_allows(partner, r))
                            .collect(),
                        PrefKind::Prefers => Vec::new(),
                    }
                }
            };
            if !regs.is_empty() {
                out.push(Honorable { pref, regs });
            }
        }
        out
    }

    /// The cached step-3 differential of `n`, recomputed only when a prior
    /// assignment marked it stale.
    fn cached_differential(&mut self, n: NodeId) -> i64 {
        if self.diff_dirty[n.index()] {
            self.diff_cache[n.index()] = self.differential(n);
            self.diff_dirty[n.index()] = false;
        }
        self.diff_cache[n.index()]
    }

    /// Marks every node whose differential reads `n`'s assignment as
    /// stale: `n`'s interference neighbors (their available sets shrank)
    /// and the holders of preferences targeting `n` (those preferences
    /// just became honorable). Spills change no assignment, so they
    /// invalidate nothing.
    fn invalidate_after_assign(&mut self, n: NodeId) {
        for &x in self.ifg.neighbors_slice(n) {
            self.diff_dirty[x.index()] = true;
        }
        for i in 0..self.rev_pref[n.index()].len() {
            let holder = self.rev_pref[n.index()][i];
            self.diff_dirty[holder.index()] = true;
        }
    }

    /// The strength of honoring `pref` with register `r` under the current
    /// assignments, or `None` when `r` does not honor it (mirrors the
    /// per-register filters of [`honorable_prefs`](Self::honorable_prefs)).
    fn pref_strength_if_admits(&self, pref: &Preference, r: PhysReg) -> Option<i64> {
        let admits = match pref.target {
            PrefTarget::Volatile => self.target.is_volatile(r),
            PrefTarget::NonVolatile => !self.target.is_volatile(r),
            PrefTarget::Set(mask) => r.index() < 64 && (mask >> r.index()) & 1 == 1,
            PrefTarget::Node(m) => {
                let m = self.ifg.rep(m);
                let partner = self.assignment[m.index()]?; // deferred (2.2)
                match pref.kind {
                    PrefKind::Coalesce => r == partner,
                    PrefKind::SequentialPlus => self.target.pair_allows(r, partner),
                    PrefKind::SequentialMinus => self.target.pair_allows(partner, r),
                    PrefKind::Prefers => false,
                }
            }
        };
        admits.then(|| pref.strength_with(r, self.target))
    }

    /// Step 3's metric: the spread between the best and worst per-register
    /// preference satisfaction over the currently available registers.
    /// Allocation-free: occupancy lives in the selector-owned scratch
    /// buffer and preferences are evaluated per register instead of
    /// materializing honoring register sets.
    fn differential(&mut self, n: NodeId) -> i64 {
        let mut used = std::mem::take(&mut self.used_scratch);
        used.clear();
        used.resize(self.target.num_regs(self.nodes.class()), false);
        for &x in self.ifg.neighbors_slice(n) {
            if let Some(r) = self.assignment[x.index()] {
                used[r.index()] = true;
            }
        }
        let mut best = i64::MIN;
        let mut worst = i64::MAX;
        let mut any_available = false;
        for r in self.target.regs(self.nodes.class()) {
            if used[r.index()] {
                continue;
            }
            any_available = true;
            let s = self
                .rpg
                .prefs(n)
                .iter()
                .filter_map(|pref| self.pref_strength_if_admits(pref, r))
                .max()
                .unwrap_or(0);
            best = best.max(s);
            worst = worst.min(s);
        }
        self.used_scratch = used;
        if !any_available {
            return i64::MIN + 1; // will spill regardless of order
        }
        best - worst
    }

    /// The trace label for a preference kind.
    fn kind_str(kind: PrefKind) -> &'static str {
        match kind {
            PrefKind::Coalesce => "coalesce",
            PrefKind::SequentialPlus => "seq+",
            PrefKind::SequentialMinus => "seq-",
            PrefKind::Prefers => "prefers",
        }
    }

    /// The trace label for a preference target.
    fn target_str(&self, target: PrefTarget) -> String {
        match target {
            PrefTarget::Node(m) if self.nodes.is_precolored(m) => {
                self.nodes.phys_reg(m).to_string()
            }
            PrefTarget::Node(m) => format!("node:{}", m.index()),
            PrefTarget::Volatile => "volatile".to_string(),
            PrefTarget::NonVolatile => "non-volatile".to_string(),
            PrefTarget::Set(mask) => format!("set:{mask:#x}"),
        }
    }

    /// The spill cost reported in trace verdicts.
    fn cost_of(&self, n: NodeId) -> u64 {
        self.spill_costs.get(n.index()).copied().unwrap_or(0)
    }

    /// Emits the decision event for `n` (only called when tracing).
    #[allow(clippy::too_many_arguments)]
    fn emit_decision(
        &self,
        tracer: &mut dyn Tracer,
        n: NodeId,
        frontier: u32,
        differential: i64,
        available: u32,
        considered: Vec<Considered>,
        verdict: Verdict,
    ) {
        tracer.record(&Event::Decision(Decision {
            round: self.round,
            class: self.nodes.class(),
            node: n.index() as u32,
            members: self
                .nodes
                .members(n)
                .iter()
                .map(|v| v.index() as u32)
                .collect(),
            frontier,
            differential,
            available,
            considered,
            verdict,
        }));
    }

    /// Steps 4.1–4.4 for the chosen node.
    fn allocate(&mut self, n: NodeId, frontier: u32, differential: i64, tracer: &mut dyn Tracer) {
        let trace = tracer.enabled();
        let avail = self.available(n);
        let navail = avail.len() as u32;
        if avail.is_empty() {
            self.spill(n);
            if trace {
                let verdict = Verdict::Spilled {
                    reason: SpillReason::NoRegister,
                    cost: self.cost_of(n),
                };
                self.emit_decision(tracer, n, frontier, differential, 0, Vec::new(), verdict);
            }
            return;
        }
        let honorable = self.honorable_prefs(n, &avail);
        // §5.4 active spilling: the strongest preference is for memory.
        if self.config.active_spill && !self.no_spill[n.index()] {
            let strongest = honorable
                .iter()
                .flat_map(|h| {
                    h.regs
                        .iter()
                        .map(|&r| h.pref.strength_with(r, self.target))
                })
                .max();
            if let Some(s) = strongest {
                if s < 0 {
                    self.spill(n);
                    if trace {
                        let considered = honorable
                            .iter()
                            .map(|h| Considered {
                                kind: Self::kind_str(h.pref.kind),
                                target: self.target_str(h.pref.target),
                                strength: h
                                    .regs
                                    .iter()
                                    .map(|&r| h.pref.strength_with(r, self.target))
                                    .max()
                                    .unwrap_or(i64::MIN),
                                deferred: false,
                                narrowed: false,
                                survivors: navail,
                            })
                            .collect();
                        let verdict = Verdict::Spilled {
                            reason: SpillReason::PreferMemory,
                            cost: self.cost_of(n),
                        };
                        self.emit_decision(
                            tracer,
                            n,
                            frontier,
                            differential,
                            navail,
                            considered,
                            verdict,
                        );
                    }
                    return;
                }
            }
        }

        // Steps 4.2–4.3: screen strongest-to-weakest over *all* of n's
        // preferences, honorable and deferred alike. An honorable
        // preference narrows the candidate set when it can still be
        // honored within it; a deferred (unallocated-partner) preference
        // narrows to the registers that leave the partner able to honor
        // it later. Interleaving by strength matters: a strong deferred
        // pairing must be able to veto a weaker coalesce before the
        // coalesce pins the candidate set (Figure 5(a)).
        enum Screen<'p> {
            Honor(Honorable),
            Defer(&'p Preference),
        }
        let mut screens: Vec<(i64, Screen<'_>)> = honorable
            .into_iter()
            .map(|h| {
                let s = h
                    .regs
                    .iter()
                    .map(|&r| h.pref.strength_with(r, self.target))
                    .max()
                    .unwrap_or(i64::MIN);
                (s, Screen::Honor(h))
            })
            .collect();
        for pref in self.deferred_prefs(n) {
            screens.push((pref.best_strength(), Screen::Defer(pref)));
        }
        screens.sort_by_key(|(s, _)| std::cmp::Reverse(*s));
        let mut considered: Vec<Considered> = Vec::new();
        let mut cand = avail;
        for (strength, screen) in &screens {
            let mut entry = if trace {
                let (kind, target, deferred) = match screen {
                    Screen::Honor(h) => {
                        (Self::kind_str(h.pref.kind), self.target_str(h.pref.target), false)
                    }
                    Screen::Defer(p) => (Self::kind_str(p.kind), self.target_str(p.target), true),
                };
                Some(Considered {
                    kind,
                    target,
                    strength: *strength,
                    deferred,
                    narrowed: false,
                    survivors: cand.len() as u32,
                })
            } else {
                None
            };
            let narrowed: Vec<PhysReg> = match screen {
                Screen::Honor(h) => {
                    let regs: Vec<PhysReg> =
                        cand.iter().copied().filter(|r| h.regs.contains(r)).collect();
                    let gain = regs
                        .iter()
                        .map(|&r| h.pref.strength_with(r, self.target))
                        .max()
                        .unwrap_or(0);
                    if gain > 0 {
                        regs
                    } else {
                        considered.extend(entry);
                        continue;
                    }
                }
                Screen::Defer(pref) => {
                    if *strength <= 0 {
                        considered.extend(entry);
                        continue;
                    }
                    self.partner_feasible(pref, &cand)
                }
            };
            // A filter that would empty the set is skipped: the
            // preference is abandoned rather than hurting this node.
            if !narrowed.is_empty() {
                cand = narrowed;
                if let Some(e) = &mut entry {
                    e.narrowed = true;
                    e.survivors = cand.len() as u32;
                }
            }
            considered.extend(entry);
        }

        // Step 4.4: pick.
        let reg = if self.config.nonvolatile_first {
            cand.iter()
                .copied()
                .find(|&r| !self.target.is_volatile(r))
                .unwrap_or(cand[0])
        } else {
            cand[0]
        };
        self.assignment[n.index()] = Some(reg);
        self.invalidate_after_assign(n);
        if trace {
            self.emit_decision(
                tracer,
                n,
                frontier,
                differential,
                navail,
                considered,
                Verdict::Assigned { reg },
            );
        }
    }

    /// The preferences of `n` whose partner node is still unallocated
    /// (deferred in step 2.2): they cannot be honored now, but they can
    /// reserve registers that keep them honorable later.
    fn deferred_prefs(&self, n: NodeId) -> Vec<&Preference> {
        let mut deferred: Vec<&Preference> = Vec::new();
        for pref in self.rpg.prefs(n) {
            if let PrefTarget::Node(m) = pref.target {
                let m = self.ifg.rep(m);
                let pending = self.assignment[m.index()].is_none()
                    && !self.spilled[m.index()]
                    && !self.nodes.is_precolored(m)
                    && self.cpg.contains(m);
                if pending && !matches!(pref.kind, PrefKind::Prefers) {
                    deferred.push(pref);
                }
            }
        }
        deferred
    }

    /// The registers of `cand` that do not prevent the deferred
    /// preference `pref` from being honored later:
    ///
    /// * a *coalesce* partner must later be able to take the same register
    ///   we pick, so registers already blocked by the partner's allocated
    ///   neighbors are removed;
    /// * a *sequential* partner must later find a register that pairs with
    ///   ours under the target rule.
    fn partner_feasible(&self, pref: &Preference, cand: &[PhysReg]) -> Vec<PhysReg> {
        let PrefTarget::Node(m) = pref.target else {
            return cand.to_vec();
        };
        let m = self.ifg.rep(m);
        let partner_blocked: Vec<PhysReg> = self
            .ifg
            .neighbors_slice(m)
            .iter()
            .filter_map(|&x| self.assignment[x.index()])
            .collect();
        cand.iter()
            .copied()
            .filter(|&r| match pref.kind {
                PrefKind::Coalesce => !partner_blocked.contains(&r),
                PrefKind::SequentialPlus | PrefKind::SequentialMinus => {
                    self.target.regs(self.nodes.class()).any(|s| {
                        s != r
                            && !partner_blocked.contains(&s)
                            && match pref.kind {
                                PrefKind::SequentialPlus => self.target.pair_allows(r, s),
                                _ => self.target.pair_allows(s, r),
                            }
                    })
                }
                PrefKind::Prefers => true,
            })
            .collect()
    }

    fn spill(&mut self, n: NodeId) {
        assert!(
            !self.no_spill[n.index()],
            "select: forced to spill unspillable temporary {n}"
        );
        self.spilled[n.index()] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::{simplify, SimplifyMode};
    use pdgc_ir::RegClass;
    use pdgc_target::TargetDesc;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Universe with 3 precolored + the given interference edges among
    /// live ranges 3..3+m.
    fn setup(m: usize, edges: &[(usize, usize)]) -> (InterferenceGraph, NodeMap) {
        use pdgc_ir::FunctionBuilder;
        // NodeMap needs a function; build one with m int vregs all used.
        let mut b = FunctionBuilder::new("t", vec![], None);
        let base = b.iconst(0);
        let mut vs = vec![];
        for i in 0..m {
            let v = b.load(base, (i * 16) as i32 + 128);
            vs.push(v);
        }
        // keep them all live to the end via stores
        for &v in &vs {
            b.store(v, base, 0);
        }
        b.ret(None);
        let f = b.finish();
        let target = TargetDesc::figure7();
        let pinned = vec![None; f.num_vregs()];
        let nm = NodeMap::build(&f, &target, RegClass::Int, &pinned);
        let mut g = InterferenceGraph::new(nm.num_nodes(), nm.num_phys());
        for &(a, b2) in edges {
            g.add_edge(n(a), n(b2));
        }
        (g, nm)
    }

    fn run_select(
        g: &mut InterferenceGraph,
        nm: &NodeMap,
        rpg: &Rpg,
        config: SelectConfig,
    ) -> SelectResult {
        let target = TargetDesc::figure7();
        let costs = vec![10u64; nm.num_nodes()];
        let sr = simplify(g, 3, &costs, SimplifyMode::Optimistic);
        g.restore_all();
        let cpg = Cpg::build(g, &sr.stack, &sr.optimistic, 3);
        let no_spill = vec![false; nm.num_nodes()];
        select(g, nm, rpg, &cpg, &target, &no_spill, config)
    }

    #[test]
    fn triangle_gets_three_distinct_registers() {
        // Nodes 3,4,5 mutually interfere (a triangle), node 6 is free.
        let (mut g, nm) = setup(3, &[(3, 4), (3, 5), (4, 5)]);
        let rpg = Rpg::new(nm.num_nodes());
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert!(r.spilled.is_empty());
        let mut regs: Vec<_> = (3..6).map(|i| r.assignment[i].unwrap()).collect();
        regs.sort();
        regs.dedup();
        assert_eq!(regs.len(), 3);
    }

    #[test]
    fn k4_with_three_colors_spills_exactly_one() {
        let (mut g, nm) = setup(3, &[(3, 4), (3, 5), (3, 6), (4, 5), (4, 6), (5, 6)]);
        let rpg = Rpg::new(nm.num_nodes());
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert_eq!(r.spilled.len() + (3..7).filter(|&i| r.assignment[i].is_some()).count(), 4);
        // All allocated nodes have distinct registers (they all interfere).
        let mut regs: Vec<_> = (3..7).filter_map(|i| r.assignment[i]).collect();
        let before = regs.len();
        regs.sort();
        regs.dedup();
        assert_eq!(regs.len(), before);
    }

    #[test]
    fn coalesce_preference_matches_partner_register() {
        // Two non-interfering nodes 4 and 5, copy-related; 4 also
        // interferes with nothing else. Force processing order via CPG and
        // check 5 lands on 4's register.
        let (mut g, nm) = setup(2, &[(3, 4), (3, 5)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        for (a, b) in [(4, 5), (5, 4)] {
            rpg.add(
                n(a),
                Preference {
                    kind: PrefKind::Coalesce,
                    target: PrefTarget::Node(n(b)),
                    strength_vol: 40,
                    strength_nonvol: 38,
                },
            );
        }
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert!(r.spilled.is_empty());
        assert_eq!(r.assignment[4], r.assignment[5]);
    }

    #[test]
    fn dedicated_register_preference_honored() {
        // Node 4 copy-related to precolored r2 (node 2).
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::Coalesce,
                target: PrefTarget::Node(n(2)),
                strength_vol: 10,
                strength_nonvol: 10,
            },
        );
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert_eq!(r.assignment[4], Some(pdgc_target::PhysReg::int(2)));
    }

    #[test]
    fn prefers_nonvolatile_honored() {
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::Prefers,
                target: PrefTarget::NonVolatile,
                strength_vol: i64::MIN,
                strength_nonvol: 25,
            },
        );
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::Prefers,
                target: PrefTarget::Volatile,
                strength_vol: 5,
                strength_nonvol: i64::MIN,
            },
        );
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        // figure7 target: r2 is the only non-volatile register.
        assert_eq!(r.assignment[4], Some(pdgc_target::PhysReg::int(2)));
    }

    #[test]
    fn active_spill_on_memory_preference() {
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        for (t, sv, snv) in [
            (PrefTarget::Volatile, -5i64, i64::MIN),
            (PrefTarget::NonVolatile, i64::MIN, -7),
        ] {
            rpg.add(
                n(4),
                Preference {
                    kind: PrefKind::Prefers,
                    target: t,
                    strength_vol: sv,
                    strength_nonvol: snv,
                },
            );
        }
        let cfg = SelectConfig {
            active_spill: true,
            nonvolatile_first: false,
        };
        let r = run_select(&mut g, &nm, &rpg, cfg);
        assert_eq!(r.spilled, vec![n(4)]);
        // With active spilling off the node gets a register.
        let (mut g2, nm2) = setup(1, &[(3, 4)]);
        let cfg = SelectConfig {
            active_spill: false,
            nonvolatile_first: false,
        };
        let r2 = run_select(&mut g2, &nm2, &rpg, cfg);
        assert!(r2.spilled.is_empty());
    }

    #[test]
    fn nonvolatile_first_fallback() {
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let rpg = Rpg::new(nm.num_nodes());
        let cfg = SelectConfig {
            active_spill: false,
            nonvolatile_first: true,
        };
        let r = run_select(&mut g, &nm, &rpg, cfg);
        // The first node processed (lowest id on ties: the base at node 3)
        // takes the sole non-volatile register r2; its neighbor falls back
        // to the first volatile register.
        assert_eq!(r.assignment[3], Some(pdgc_target::PhysReg::int(2)));
        assert_eq!(r.assignment[4], Some(pdgc_target::PhysReg::int(0)));
    }

    #[test]
    fn sequential_pairing_after_partner_allocated() {
        // 4 and 5 interfere (paired values are simultaneously live).
        let (mut g, nm) = setup(2, &[(3, 4), (3, 5), (4, 5)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::SequentialPlus,
                target: PrefTarget::Node(n(5)),
                strength_vol: 50,
                strength_nonvol: 48,
            },
        );
        rpg.add(
            n(5),
            Preference {
                kind: PrefKind::SequentialMinus,
                target: PrefTarget::Node(n(4)),
                strength_vol: 50,
                strength_nonvol: 48,
            },
        );
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        let (a, b) = (r.assignment[4].unwrap(), r.assignment[5].unwrap());
        // figure7 uses the different-parity rule.
        assert!(TargetDesc::figure7().pair_allows(a, b));
    }
}
