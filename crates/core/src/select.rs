//! The integrated, preference-directed select phase — §5.3 of the paper.
//!
//! Select walks the ready frontier of the [`Cpg`]: at each step it
//!
//! 1. evaluates every frontier node's honorable preferences against prior
//!    register selections (paper steps 2.1–2.3),
//! 2. picks the node with the largest *strength differential* — the node
//!    with the most at stake between its best and worst register choice
//!    (step 3),
//! 3. assigns it a register by screening the available set through its
//!    preferences, strongest first (steps 4.1–4.4), reserving registers
//!    that not-yet-allocated preference partners will need (step 4.3),
//!    spilling when no register is available — or *actively* when the
//!    node's strongest preference is to live in memory (§5.4),
//! 4. releases its CPG successors (step 5).
//!
//! Spill decisions, coalescing (same-register selection), and every
//! preference type are thereby resolved simultaneously.

use crate::cpg::Cpg;
use crate::ifg::InterferenceGraph;
use crate::node::{NodeId, NodeMap};
use crate::rpg::{PrefKind, PrefTarget, Preference, Rpg};
use pdgc_arena::{NestedPool, VecPool};
use pdgc_obs::{
    Considered, Counter, Decision, Event, MetricsRegistry, NoopTracer, SpillReason, Tracer,
    ValueHist, Verdict,
};
use pdgc_target::{PhysReg, TargetDesc};

/// Resettable scratch for [`select_traced_in`]: the reverse-preference
/// index, the differential caches, and the per-select working vectors.
#[derive(Debug, Default)]
pub struct SelectScratch {
    rev_pref: NestedPool<NodeId>,
    assignments: VecPool<Option<PhysReg>>,
    bools: VecPool<bool>,
    diffs: VecPool<i64>,
    counts: VecPool<usize>,
    nodes: VecPool<NodeId>,
    /// Pool for candidate-register sets: the available set, per-preference
    /// honoring sets, narrowed candidate sets, and partner-blocked sets.
    phys: VecPool<PhysReg>,
    /// Reused per-node screening list (honorable + deferred preferences).
    screens: Vec<ScreenEntry>,
    /// Register-occupancy buffer threaded into the selector's
    /// differential scan (the `select.rs` take/restore audit target).
    used: Vec<bool>,
    /// Always-on screening-outcome counters (honored/deferred/skipped by
    /// preference kind, spill reasons, strength distribution) plus the
    /// strategy's per-class phase latencies. The pipeline drains this
    /// into the worker's `PhaseScratch` registry after every class.
    pub metrics: MetricsRegistry,
}

impl SelectScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity of the pooled differential-occupancy buffer (diagnostic;
    /// the take/restore regression test asserts it survives the
    /// no-register-available early return).
    pub fn used_capacity(&self) -> usize {
        self.used.capacity()
    }
}

/// Tunables for the select phase.
#[derive(Clone, Copy, Debug)]
pub struct SelectConfig {
    /// Spill a node whose strongest preference is negative (it prefers
    /// memory). Enabled by the full-preference allocator, disabled in
    /// coalescing-only mode.
    pub active_spill: bool,
    /// When no preference discriminates among the remaining candidates,
    /// pick the lowest-index non-volatile register first (the "simple
    /// heuristic" the paper gives preference-unaware allocators); otherwise
    /// pick the lowest index overall.
    pub nonvolatile_first: bool,
}

impl Default for SelectConfig {
    fn default() -> Self {
        SelectConfig {
            active_spill: true,
            nonvolatile_first: false,
        }
    }
}

/// The outcome of selection for one class.
#[derive(Clone, Debug)]
pub struct SelectResult {
    /// Register per node (precolored nodes prefilled; `None` = spilled or
    /// not part of this universe).
    pub assignment: Vec<Option<PhysReg>>,
    /// Live-range nodes that must be spilled.
    pub spilled: Vec<NodeId>,
}

impl SelectResult {
    /// Returns this result's vectors to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut SelectScratch) {
        scratch.assignments.put(self.assignment);
        scratch.nodes.put(self.spilled);
    }
}

/// Runs preference-directed selection over one class.
///
/// `no_spill[n]` marks spill temporaries that must receive registers.
///
/// # Panics
///
/// Panics if the CPG is cyclic (cannot happen for graphs built by
/// [`Cpg::build`]).
pub fn select(
    ifg: &InterferenceGraph,
    nodes: &NodeMap,
    rpg: &Rpg,
    cpg: &Cpg,
    target: &TargetDesc,
    no_spill: &[bool],
    config: SelectConfig,
) -> SelectResult {
    select_traced(ifg, nodes, rpg, cpg, target, no_spill, &[], config, 1, &mut NoopTracer)
}

/// [`select`] with an attached [`Tracer`]: emits one [`Decision`] event
/// per node resolved — the ready-frontier size, the strength differential,
/// every preference screened with its strength, and the verdict (register
/// or spill with its cost).
///
/// `spill_costs` (per node, `u64::MAX` = unspillable) only feeds the spill
/// verdicts in the trace; pass `&[]` when untraced. `round` labels the
/// events with the pipeline's spill round.
///
/// # Panics
///
/// Same as [`select`].
#[allow(clippy::too_many_arguments)]
pub fn select_traced(
    ifg: &InterferenceGraph,
    nodes: &NodeMap,
    rpg: &Rpg,
    cpg: &Cpg,
    target: &TargetDesc,
    no_spill: &[bool],
    spill_costs: &[u64],
    config: SelectConfig,
    round: u32,
    tracer: &mut dyn Tracer,
) -> SelectResult {
    select_traced_in(
        ifg,
        nodes,
        rpg,
        cpg,
        target,
        no_spill,
        spill_costs,
        config,
        round,
        tracer,
        &mut SelectScratch::default(),
    )
}

/// [`select_traced`] drawing every per-select vector — the reverse
/// preference index, assignment, differential caches, and occupancy
/// buffers — from pooled scratch. Recycle the result with
/// [`SelectResult::recycle`].
///
/// # Panics
///
/// Same as [`select`].
#[allow(clippy::too_many_arguments)]
pub fn select_traced_in(
    ifg: &InterferenceGraph,
    nodes: &NodeMap,
    rpg: &Rpg,
    cpg: &Cpg,
    target: &TargetDesc,
    no_spill: &[bool],
    spill_costs: &[u64],
    config: SelectConfig,
    round: u32,
    tracer: &mut dyn Tracer,
    scratch: &mut SelectScratch,
) -> SelectResult {
    // Reverse preference index: rev_pref[m] holds the nodes with a
    // preference targeting (the representative of) m. Assigning m makes
    // exactly those nodes' differentials stale.
    let mut rev_pref = scratch.rev_pref.take(nodes.num_nodes());
    for i in 0..nodes.num_nodes() {
        let holder = NodeId::new(i);
        for pref in rpg.prefs(holder) {
            if let PrefTarget::Node(m) = pref.target {
                rev_pref[ifg.rep(m).index()].push(holder);
            }
        }
    }
    let mut assignment = scratch.assignments.take();
    assignment.extend((0..nodes.num_nodes()).map(|i| {
        let n = NodeId::new(i);
        nodes.is_precolored(n).then(|| nodes.phys_reg(n))
    }));
    Selector {
        ifg,
        nodes,
        rpg,
        cpg,
        target,
        no_spill,
        spill_costs,
        config,
        round,
        assignment,
        spilled: scratch.bools.take_filled(nodes.num_nodes(), false),
        processed: scratch.bools.take_filled(nodes.num_nodes(), false),
        rev_pref,
        diff_cache: scratch.diffs.take_filled(nodes.num_nodes(), 0),
        diff_dirty: scratch.bools.take_filled(nodes.num_nodes(), true),
        used_scratch: std::mem::take(&mut scratch.used),
        phys: std::mem::take(&mut scratch.phys),
        screen_buf: std::mem::take(&mut scratch.screens),
        metrics: std::mem::take(&mut scratch.metrics),
    }
    .run(tracer, scratch)
}

struct Selector<'a> {
    ifg: &'a InterferenceGraph,
    nodes: &'a NodeMap,
    rpg: &'a Rpg,
    cpg: &'a Cpg,
    target: &'a TargetDesc,
    no_spill: &'a [bool],
    spill_costs: &'a [u64],
    config: SelectConfig,
    round: u32,
    assignment: Vec<Option<PhysReg>>,
    spilled: Vec<bool>,
    processed: Vec<bool>,
    /// `rev_pref[m]`: nodes holding a preference that targets `m`'s
    /// representative.
    rev_pref: Vec<Vec<NodeId>>,
    /// Cached step-3 strength differential per node; valid while the
    /// matching `diff_dirty` bit is clear.
    diff_cache: Vec<i64>,
    diff_dirty: Vec<bool>,
    /// Reusable register-occupancy scratch for the differential scan,
    /// owned by the selector so the frontier loop never allocates.
    used_scratch: Vec<bool>,
    /// Pool for the per-node candidate-register vectors.
    phys: VecPool<PhysReg>,
    /// Reused screening list, cleared between nodes.
    screen_buf: Vec<ScreenEntry>,
    /// Taken from the scratch for the duration of the select, parked back
    /// in `run`; every bump is an array write, never an allocation.
    metrics: MetricsRegistry,
}

/// One screened preference of the node being allocated: an *honorable*
/// preference carries the registers of the available set that honor it; a
/// *deferred* one (unallocated partner) carries no set — it narrows to the
/// registers that keep the partner able to honor it later.
#[derive(Debug)]
struct ScreenEntry {
    strength: i64,
    pref: Preference,
    deferred: bool,
    regs: Vec<PhysReg>,
}

/// How one preference screen ended, for the scorecard.
#[derive(Clone, Copy)]
enum ScreenOutcome {
    /// Narrowed the candidate set with the partner already placed.
    Honored,
    /// Narrowed the set to keep an unallocated partner feasible (2.2).
    Deferred,
    /// Abandoned: the filter would have emptied the set (or added no
    /// gain).
    Skipped,
}

impl Selector<'_> {
    fn run(mut self, tracer: &mut dyn Tracer, scratch: &mut SelectScratch) -> SelectResult {
        let mut pred_remaining = scratch.counts.take();
        pred_remaining.extend((0..self.nodes.num_nodes()).map(|i| self.cpg.preds(NodeId::new(i)).len()));
        let mut queue = scratch.nodes.take();
        queue.extend(self.cpg.initial_queue());
        let total: usize = self.cpg.nodes().count();
        let mut done = 0;

        while !queue.is_empty() {
            // Step 3: the frontier node with the largest differential
            // (lowest node id on ties). Differentials are cached and only
            // recomputed for nodes an assignment actually invalidated —
            // an interference neighbor or preference holder of the
            // assigned node — so a steady-state step touches the scratch
            // buffers of the few dirty frontier nodes instead of
            // re-deriving every frontier member from scratch.
            let mut best: Option<(usize, i64)> = None;
            for i in 0..queue.len() {
                let n = queue[i];
                let d = self.cached_differential(n);
                let better = match best {
                    None => true,
                    Some((bi, bd)) => d > bd || (d == bd && n.index() < queue[bi].index()),
                };
                if better {
                    best = Some((i, d));
                }
            }
            let (qi, differential) = best.expect("non-empty queue");
            let frontier = queue.len() as u32;
            let n = queue.swap_remove(qi);

            self.allocate(n, frontier, differential, tracer);
            self.processed[n.index()] = true;
            done += 1;

            // Step 5: release successors.
            for &s in self.cpg.succs(n) {
                pred_remaining[s.index()] -= 1;
                if pred_remaining[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(done, total, "CPG must drain completely (acyclic)");

        let mut spilled = scratch.nodes.take();
        spilled.extend(
            (0..self.nodes.num_nodes())
                .map(NodeId::new)
                .filter(|n| self.spilled[n.index()]),
        );
        // Park every internal buffer back in the scratch before returning:
        // the next select call reuses all of them.
        scratch.counts.put(pred_remaining);
        scratch.nodes.put(queue);
        scratch.rev_pref.put(self.rev_pref);
        scratch.bools.put(self.spilled);
        scratch.bools.put(self.processed);
        scratch.bools.put(self.diff_dirty);
        scratch.diffs.put(self.diff_cache);
        scratch.used = std::mem::take(&mut self.used_scratch);
        scratch.phys = std::mem::take(&mut self.phys);
        scratch.screens = std::mem::take(&mut self.screen_buf);
        scratch.metrics = std::mem::take(&mut self.metrics);
        SelectResult {
            assignment: self.assignment,
            spilled,
        }
    }

    /// Registers not used by already-allocated interference neighbors,
    /// written into `out` (occupancy via the reused differential buffer).
    fn collect_available(&mut self, n: NodeId, out: &mut Vec<PhysReg>) {
        let mut used = std::mem::take(&mut self.used_scratch);
        used.clear();
        used.resize(self.target.num_regs(self.nodes.class()), false);
        for &x in self.ifg.neighbors_slice(n) {
            if let Some(r) = self.assignment[x.index()] {
                used[r.index()] = true;
            }
        }
        out.extend(
            self.target
                .regs(self.nodes.class())
                .filter(|r| !used[r.index()]),
        );
        self.used_scratch = used;
    }

    /// Steps 2.1–2.2: screens the preferences of `n` into `out` — first
    /// the honorable ones (a non-empty honoring set within `avail`), then
    /// the deferred ones (partner not yet allocated), each in preference
    /// order so the later stable sort ties out exactly like the unpooled
    /// path did.
    fn collect_screens(&mut self, n: NodeId, avail: &[PhysReg], out: &mut Vec<ScreenEntry>) {
        let rpg = self.rpg;
        for &pref in rpg.prefs(n) {
            let mut regs = self.phys.take();
            match pref.target {
                PrefTarget::Volatile => {
                    regs.extend(avail.iter().copied().filter(|&r| self.target.is_volatile(r)));
                }
                PrefTarget::NonVolatile => {
                    regs.extend(avail.iter().copied().filter(|&r| !self.target.is_volatile(r)));
                }
                PrefTarget::Set(mask) => {
                    regs.extend(
                        avail
                            .iter()
                            .copied()
                            .filter(|&r| r.index() < 64 && (mask >> r.index()) & 1 == 1),
                    );
                }
                PrefTarget::Node(m) => {
                    // Resolve through coalesced representatives (pre-
                    // coalescing merges nodes before selection). An
                    // unallocated partner leaves the set empty: the
                    // preference is deferred (2.2), handled below.
                    let m = self.ifg.rep(m);
                    if let Some(partner) = self.assignment[m.index()] {
                        match pref.kind {
                            PrefKind::Coalesce => {
                                regs.extend(avail.iter().copied().filter(|&r| r == partner));
                            }
                            PrefKind::SequentialPlus => {
                                regs.extend(
                                    avail
                                        .iter()
                                        .copied()
                                        .filter(|&r| self.target.pair_allows(r, partner)),
                                );
                            }
                            PrefKind::SequentialMinus => {
                                regs.extend(
                                    avail
                                        .iter()
                                        .copied()
                                        .filter(|&r| self.target.pair_allows(partner, r)),
                                );
                            }
                            PrefKind::Prefers => {}
                        }
                    }
                }
            }
            if regs.is_empty() {
                self.phys.put(regs);
            } else {
                let strength = regs
                    .iter()
                    .map(|&r| pref.strength_with(r, self.target))
                    .max()
                    .unwrap_or(i64::MIN);
                out.push(ScreenEntry {
                    strength,
                    pref,
                    deferred: false,
                    regs,
                });
            }
        }
        for &pref in rpg.prefs(n) {
            if let PrefTarget::Node(m) = pref.target {
                let m = self.ifg.rep(m);
                let pending = self.assignment[m.index()].is_none()
                    && !self.spilled[m.index()]
                    && !self.nodes.is_precolored(m)
                    && self.cpg.contains(m);
                if pending && !matches!(pref.kind, PrefKind::Prefers) {
                    out.push(ScreenEntry {
                        strength: pref.best_strength(),
                        pref,
                        deferred: true,
                        regs: Vec::new(),
                    });
                }
            }
        }
    }

    /// The cached step-3 differential of `n`, recomputed only when a prior
    /// assignment marked it stale.
    fn cached_differential(&mut self, n: NodeId) -> i64 {
        if self.diff_dirty[n.index()] {
            self.diff_cache[n.index()] = self.differential(n);
            self.diff_dirty[n.index()] = false;
        }
        self.diff_cache[n.index()]
    }

    /// Marks every node whose differential reads `n`'s assignment as
    /// stale: `n`'s interference neighbors (their available sets shrank)
    /// and the holders of preferences targeting `n` (those preferences
    /// just became honorable). Spills change no assignment, so they
    /// invalidate nothing.
    fn invalidate_after_assign(&mut self, n: NodeId) {
        for &x in self.ifg.neighbors_slice(n) {
            self.diff_dirty[x.index()] = true;
        }
        for i in 0..self.rev_pref[n.index()].len() {
            let holder = self.rev_pref[n.index()][i];
            self.diff_dirty[holder.index()] = true;
        }
    }

    /// The strength of honoring `pref` with register `r` under the current
    /// assignments, or `None` when `r` does not honor it (mirrors the
    /// per-register filters of [`honorable_prefs`](Self::honorable_prefs)).
    fn pref_strength_if_admits(&self, pref: &Preference, r: PhysReg) -> Option<i64> {
        let admits = match pref.target {
            PrefTarget::Volatile => self.target.is_volatile(r),
            PrefTarget::NonVolatile => !self.target.is_volatile(r),
            PrefTarget::Set(mask) => r.index() < 64 && (mask >> r.index()) & 1 == 1,
            PrefTarget::Node(m) => {
                let m = self.ifg.rep(m);
                let partner = self.assignment[m.index()]?; // deferred (2.2)
                match pref.kind {
                    PrefKind::Coalesce => r == partner,
                    PrefKind::SequentialPlus => self.target.pair_allows(r, partner),
                    PrefKind::SequentialMinus => self.target.pair_allows(partner, r),
                    PrefKind::Prefers => false,
                }
            }
        };
        admits.then(|| pref.strength_with(r, self.target))
    }

    /// Step 3's metric: the spread between the best and worst per-register
    /// preference satisfaction over the currently available registers.
    /// Allocation-free: occupancy lives in the selector-owned scratch
    /// buffer and preferences are evaluated per register instead of
    /// materializing honoring register sets.
    fn differential(&mut self, n: NodeId) -> i64 {
        let mut used = std::mem::take(&mut self.used_scratch);
        used.clear();
        used.resize(self.target.num_regs(self.nodes.class()), false);
        for &x in self.ifg.neighbors_slice(n) {
            if let Some(r) = self.assignment[x.index()] {
                used[r.index()] = true;
            }
        }
        let mut best = i64::MIN;
        let mut worst = i64::MAX;
        let mut any_available = false;
        for r in self.target.regs(self.nodes.class()) {
            if used[r.index()] {
                continue;
            }
            any_available = true;
            let s = self
                .rpg
                .prefs(n)
                .iter()
                .filter_map(|pref| self.pref_strength_if_admits(pref, r))
                .max()
                .unwrap_or(0);
            best = best.max(s);
            worst = worst.min(s);
        }
        self.used_scratch = used;
        if !any_available {
            return i64::MIN + 1; // will spill regardless of order
        }
        best - worst
    }

    /// The trace label for a preference kind.
    fn kind_str(kind: PrefKind) -> &'static str {
        match kind {
            PrefKind::Coalesce => "coalesce",
            PrefKind::SequentialPlus => "seq+",
            PrefKind::SequentialMinus => "seq-",
            PrefKind::Prefers => "prefers",
        }
    }

    /// The scorecard counter for one screening outcome: the (kind,
    /// honored/deferred/skipped) cell of the Figure 5(a) table.
    fn screen_counter(kind: PrefKind, outcome: ScreenOutcome) -> Counter {
        use ScreenOutcome::*;
        match (kind, outcome) {
            (PrefKind::Coalesce, Honored) => Counter::PrefCoalesceHonored,
            (PrefKind::Coalesce, Deferred) => Counter::PrefCoalesceDeferred,
            (PrefKind::Coalesce, Skipped) => Counter::PrefCoalesceSkipped,
            (PrefKind::SequentialPlus, Honored) => Counter::PrefSeqPlusHonored,
            (PrefKind::SequentialPlus, Deferred) => Counter::PrefSeqPlusDeferred,
            (PrefKind::SequentialPlus, Skipped) => Counter::PrefSeqPlusSkipped,
            (PrefKind::SequentialMinus, Honored) => Counter::PrefSeqMinusHonored,
            (PrefKind::SequentialMinus, Deferred) => Counter::PrefSeqMinusDeferred,
            (PrefKind::SequentialMinus, Skipped) => Counter::PrefSeqMinusSkipped,
            (PrefKind::Prefers, Honored) => Counter::PrefPrefersHonored,
            (PrefKind::Prefers, Deferred) => Counter::PrefPrefersDeferred,
            (PrefKind::Prefers, Skipped) => Counter::PrefPrefersSkipped,
        }
    }

    /// The trace label for a preference target.
    fn target_str(&self, target: PrefTarget) -> String {
        match target {
            PrefTarget::Node(m) if self.nodes.is_precolored(m) => {
                self.nodes.phys_reg(m).to_string()
            }
            PrefTarget::Node(m) => format!("node:{}", m.index()),
            PrefTarget::Volatile => "volatile".to_string(),
            PrefTarget::NonVolatile => "non-volatile".to_string(),
            PrefTarget::Set(mask) => format!("set:{mask:#x}"),
        }
    }

    /// The spill cost reported in trace verdicts.
    fn cost_of(&self, n: NodeId) -> u64 {
        self.spill_costs.get(n.index()).copied().unwrap_or(0)
    }

    /// Emits the decision event for `n` (only called when tracing).
    #[allow(clippy::too_many_arguments)]
    fn emit_decision(
        &self,
        tracer: &mut dyn Tracer,
        n: NodeId,
        frontier: u32,
        differential: i64,
        available: u32,
        considered: Vec<Considered>,
        verdict: Verdict,
    ) {
        tracer.record(&Event::Decision(Decision {
            round: self.round,
            class: self.nodes.class(),
            node: n.index() as u32,
            members: self
                .nodes
                .members(n)
                .iter()
                .map(|v| v.index() as u32)
                .collect(),
            frontier,
            differential,
            available,
            considered,
            verdict,
        }));
    }

    /// Steps 4.1–4.4 for the chosen node. Every candidate-register vector
    /// is drawn from the selector's pool and returned to it, so a warm
    /// untraced select never allocates here.
    fn allocate(&mut self, n: NodeId, frontier: u32, differential: i64, tracer: &mut dyn Tracer) {
        let trace = tracer.enabled();
        let mut avail = self.phys.take();
        self.collect_available(n, &mut avail);
        let navail = avail.len() as u32;
        if avail.is_empty() {
            self.phys.put(avail);
            self.spill(n);
            self.metrics.bump(Counter::SelectSpilledNoRegister);
            if trace {
                let verdict = Verdict::Spilled {
                    reason: SpillReason::NoRegister,
                    cost: self.cost_of(n),
                };
                self.emit_decision(tracer, n, frontier, differential, 0, Vec::new(), verdict);
            }
            return;
        }
        let mut screens = std::mem::take(&mut self.screen_buf);
        debug_assert!(screens.is_empty());
        self.collect_screens(n, &avail, &mut screens);
        // §5.4 active spilling: the strongest preference is for memory.
        if self.config.active_spill && !self.no_spill[n.index()] {
            let strongest = screens
                .iter()
                .filter(|e| !e.deferred)
                .map(|e| e.strength)
                .max();
            if let Some(s) = strongest {
                if s < 0 {
                    self.spill(n);
                    self.metrics.bump(Counter::SelectSpilledPreferMemory);
                    if trace {
                        let considered = screens
                            .iter()
                            .filter(|e| !e.deferred)
                            .map(|e| Considered {
                                kind: Self::kind_str(e.pref.kind),
                                target: self.target_str(e.pref.target),
                                strength: e.strength,
                                deferred: false,
                                narrowed: false,
                                survivors: navail,
                            })
                            .collect();
                        let verdict = Verdict::Spilled {
                            reason: SpillReason::PreferMemory,
                            cost: self.cost_of(n),
                        };
                        self.emit_decision(
                            tracer,
                            n,
                            frontier,
                            differential,
                            navail,
                            considered,
                            verdict,
                        );
                    }
                    self.phys.put(avail);
                    self.recycle_screens(screens);
                    return;
                }
            }
        }

        // Steps 4.2–4.3: screen strongest-to-weakest over *all* of n's
        // preferences, honorable and deferred alike. An honorable
        // preference narrows the candidate set when it can still be
        // honored within it; a deferred (unallocated-partner) preference
        // narrows to the registers that leave the partner able to honor
        // it later. Interleaving by strength matters: a strong deferred
        // pairing must be able to veto a weaker coalesce before the
        // coalesce pins the candidate set (Figure 5(a)).
        screens.sort_by_key(|e| std::cmp::Reverse(e.strength));
        let mut considered: Vec<Considered> = Vec::new();
        let mut cand = avail;
        for mut e in screens.drain(..) {
            let mut entry = if trace {
                Some(Considered {
                    kind: Self::kind_str(e.pref.kind),
                    target: self.target_str(e.pref.target),
                    strength: e.strength,
                    deferred: e.deferred,
                    narrowed: false,
                    survivors: cand.len() as u32,
                })
            } else {
                None
            };
            let regs = std::mem::take(&mut e.regs);
            let mut narrowed = self.phys.take();
            if !e.deferred {
                narrowed.extend(cand.iter().copied().filter(|r| regs.contains(r)));
                let gain = narrowed
                    .iter()
                    .map(|&r| e.pref.strength_with(r, self.target))
                    .max()
                    .unwrap_or(0);
                if gain <= 0 {
                    narrowed.clear();
                }
            } else if e.strength > 0 {
                self.partner_feasible_into(&e.pref, &cand, &mut narrowed);
            }
            // A filter that would empty the set is skipped: the
            // preference is abandoned rather than hurting this node.
            if narrowed.is_empty() {
                self.phys.put(narrowed);
                self.metrics
                    .bump(Self::screen_counter(e.pref.kind, ScreenOutcome::Skipped));
            } else {
                if let Some(en) = &mut entry {
                    en.narrowed = true;
                    en.survivors = narrowed.len() as u32;
                }
                self.phys.put(std::mem::replace(&mut cand, narrowed));
                if e.deferred {
                    self.metrics
                        .bump(Self::screen_counter(e.pref.kind, ScreenOutcome::Deferred));
                } else {
                    self.metrics
                        .bump(Self::screen_counter(e.pref.kind, ScreenOutcome::Honored));
                    self.metrics
                        .observe_value(ValueHist::PrefStrengthHonored, e.strength.max(0) as u64);
                }
            }
            if regs.capacity() > 0 {
                self.phys.put(regs);
            }
            considered.extend(entry);
        }
        self.screen_buf = screens;

        // Step 4.4: pick.
        let reg = if self.config.nonvolatile_first {
            cand.iter()
                .copied()
                .find(|&r| !self.target.is_volatile(r))
                .unwrap_or(cand[0])
        } else {
            cand[0]
        };
        self.phys.put(cand);
        self.assignment[n.index()] = Some(reg);
        self.metrics.bump(Counter::SelectAssigned);
        self.invalidate_after_assign(n);
        if trace {
            self.emit_decision(
                tracer,
                n,
                frontier,
                differential,
                navail,
                considered,
                Verdict::Assigned { reg },
            );
        }
    }

    /// Returns a drained-or-not screening list's vectors to the pool and
    /// parks the list itself for the next node.
    fn recycle_screens(&mut self, mut screens: Vec<ScreenEntry>) {
        for e in screens.drain(..) {
            if e.regs.capacity() > 0 {
                self.phys.put(e.regs);
            }
        }
        self.screen_buf = screens;
    }

    /// Appends to `out` the registers of `cand` that do not prevent the
    /// deferred preference `pref` from being honored later:
    ///
    /// * a *coalesce* partner must later be able to take the same register
    ///   we pick, so registers already blocked by the partner's allocated
    ///   neighbors are removed;
    /// * a *sequential* partner must later find a register that pairs with
    ///   ours under the target rule.
    fn partner_feasible_into(&mut self, pref: &Preference, cand: &[PhysReg], out: &mut Vec<PhysReg>) {
        let PrefTarget::Node(m) = pref.target else {
            out.extend_from_slice(cand);
            return;
        };
        let m = self.ifg.rep(m);
        let mut partner_blocked = self.phys.take();
        partner_blocked.extend(
            self.ifg
                .neighbors_slice(m)
                .iter()
                .filter_map(|&x| self.assignment[x.index()]),
        );
        out.extend(cand.iter().copied().filter(|&r| match pref.kind {
            PrefKind::Coalesce => !partner_blocked.contains(&r),
            PrefKind::SequentialPlus | PrefKind::SequentialMinus => {
                self.target.regs(self.nodes.class()).any(|s| {
                    s != r
                        && !partner_blocked.contains(&s)
                        && match pref.kind {
                            PrefKind::SequentialPlus => self.target.pair_allows(r, s),
                            _ => self.target.pair_allows(s, r),
                        }
                })
            }
            PrefKind::Prefers => true,
        }));
        self.phys.put(partner_blocked);
    }

    fn spill(&mut self, n: NodeId) {
        assert!(
            !self.no_spill[n.index()],
            "select: forced to spill unspillable temporary {n}"
        );
        self.spilled[n.index()] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::{simplify, SimplifyMode};
    use pdgc_ir::RegClass;
    use pdgc_target::TargetDesc;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Universe with 3 precolored + the given interference edges among
    /// live ranges 3..3+m.
    fn setup(m: usize, edges: &[(usize, usize)]) -> (InterferenceGraph, NodeMap) {
        use pdgc_ir::FunctionBuilder;
        // NodeMap needs a function; build one with m int vregs all used.
        let mut b = FunctionBuilder::new("t", vec![], None);
        let base = b.iconst(0);
        let mut vs = vec![];
        for i in 0..m {
            let v = b.load(base, (i * 16) as i32 + 128);
            vs.push(v);
        }
        // keep them all live to the end via stores
        for &v in &vs {
            b.store(v, base, 0);
        }
        b.ret(None);
        let f = b.finish();
        let target = TargetDesc::figure7();
        let pinned = vec![None; f.num_vregs()];
        let nm = NodeMap::build(&f, &target, RegClass::Int, &pinned);
        let mut g = InterferenceGraph::new(nm.num_nodes(), nm.num_phys());
        for &(a, b2) in edges {
            g.add_edge(n(a), n(b2));
        }
        (g, nm)
    }

    fn run_select(
        g: &mut InterferenceGraph,
        nm: &NodeMap,
        rpg: &Rpg,
        config: SelectConfig,
    ) -> SelectResult {
        let target = TargetDesc::figure7();
        let costs = vec![10u64; nm.num_nodes()];
        let sr = simplify(g, 3, &costs, SimplifyMode::Optimistic);
        g.restore_all();
        let cpg = Cpg::build(g, &sr.stack, &sr.optimistic, 3);
        let no_spill = vec![false; nm.num_nodes()];
        select(g, nm, rpg, &cpg, &target, &no_spill, config)
    }

    #[test]
    fn triangle_gets_three_distinct_registers() {
        // Nodes 3,4,5 mutually interfere (a triangle), node 6 is free.
        let (mut g, nm) = setup(3, &[(3, 4), (3, 5), (4, 5)]);
        let rpg = Rpg::new(nm.num_nodes());
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert!(r.spilled.is_empty());
        let mut regs: Vec<_> = (3..6).map(|i| r.assignment[i].unwrap()).collect();
        regs.sort();
        regs.dedup();
        assert_eq!(regs.len(), 3);
    }

    #[test]
    fn k4_with_three_colors_spills_exactly_one() {
        let (mut g, nm) = setup(3, &[(3, 4), (3, 5), (3, 6), (4, 5), (4, 6), (5, 6)]);
        let rpg = Rpg::new(nm.num_nodes());
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert_eq!(r.spilled.len() + (3..7).filter(|&i| r.assignment[i].is_some()).count(), 4);
        // All allocated nodes have distinct registers (they all interfere).
        let mut regs: Vec<_> = (3..7).filter_map(|i| r.assignment[i]).collect();
        let before = regs.len();
        regs.sort();
        regs.dedup();
        assert_eq!(regs.len(), before);
    }

    #[test]
    fn coalesce_preference_matches_partner_register() {
        // Two non-interfering nodes 4 and 5, copy-related; 4 also
        // interferes with nothing else. Force processing order via CPG and
        // check 5 lands on 4's register.
        let (mut g, nm) = setup(2, &[(3, 4), (3, 5)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        for (a, b) in [(4, 5), (5, 4)] {
            rpg.add(
                n(a),
                Preference {
                    kind: PrefKind::Coalesce,
                    target: PrefTarget::Node(n(b)),
                    strength_vol: 40,
                    strength_nonvol: 38,
                },
            );
        }
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert!(r.spilled.is_empty());
        assert_eq!(r.assignment[4], r.assignment[5]);
    }

    #[test]
    fn dedicated_register_preference_honored() {
        // Node 4 copy-related to precolored r2 (node 2).
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::Coalesce,
                target: PrefTarget::Node(n(2)),
                strength_vol: 10,
                strength_nonvol: 10,
            },
        );
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        assert_eq!(r.assignment[4], Some(pdgc_target::PhysReg::int(2)));
    }

    #[test]
    fn prefers_nonvolatile_honored() {
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::Prefers,
                target: PrefTarget::NonVolatile,
                strength_vol: i64::MIN,
                strength_nonvol: 25,
            },
        );
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::Prefers,
                target: PrefTarget::Volatile,
                strength_vol: 5,
                strength_nonvol: i64::MIN,
            },
        );
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        // figure7 target: r2 is the only non-volatile register.
        assert_eq!(r.assignment[4], Some(pdgc_target::PhysReg::int(2)));
    }

    #[test]
    fn active_spill_on_memory_preference() {
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        for (t, sv, snv) in [
            (PrefTarget::Volatile, -5i64, i64::MIN),
            (PrefTarget::NonVolatile, i64::MIN, -7),
        ] {
            rpg.add(
                n(4),
                Preference {
                    kind: PrefKind::Prefers,
                    target: t,
                    strength_vol: sv,
                    strength_nonvol: snv,
                },
            );
        }
        let cfg = SelectConfig {
            active_spill: true,
            nonvolatile_first: false,
        };
        let r = run_select(&mut g, &nm, &rpg, cfg);
        assert_eq!(r.spilled, vec![n(4)]);
        // With active spilling off the node gets a register.
        let (mut g2, nm2) = setup(1, &[(3, 4)]);
        let cfg = SelectConfig {
            active_spill: false,
            nonvolatile_first: false,
        };
        let r2 = run_select(&mut g2, &nm2, &rpg, cfg);
        assert!(r2.spilled.is_empty());
    }

    #[test]
    fn nonvolatile_first_fallback() {
        let (mut g, nm) = setup(1, &[(3, 4)]);
        let rpg = Rpg::new(nm.num_nodes());
        let cfg = SelectConfig {
            active_spill: false,
            nonvolatile_first: true,
        };
        let r = run_select(&mut g, &nm, &rpg, cfg);
        // The first node processed (lowest id on ties: the base at node 3)
        // takes the sole non-volatile register r2; its neighbor falls back
        // to the first volatile register.
        assert_eq!(r.assignment[3], Some(pdgc_target::PhysReg::int(2)));
        assert_eq!(r.assignment[4], Some(pdgc_target::PhysReg::int(0)));
    }

    #[test]
    fn differential_early_return_keeps_occupancy_buffer() {
        // K4 on three registers forces the no-register-available early
        // return inside the differential scan. The take/restore pair in
        // `differential` must put the occupancy buffer back before that
        // return — if a refactor drops it, the scratch comes back with
        // zero capacity and steady-state reuse silently degrades to
        // per-call allocation.
        let (mut g, nm) = setup(3, &[(3, 4), (3, 5), (3, 6), (4, 5), (4, 6), (5, 6)]);
        let rpg = Rpg::new(nm.num_nodes());
        let target = TargetDesc::figure7();
        let costs = vec![10u64; nm.num_nodes()];
        let sr = simplify(&mut g, 3, &costs, SimplifyMode::Optimistic);
        g.restore_all();
        let cpg = Cpg::build(&g, &sr.stack, &sr.optimistic, 3);
        let no_spill = vec![false; nm.num_nodes()];
        let mut scratch = SelectScratch::new();
        let r1 = select_traced_in(
            &g,
            &nm,
            &rpg,
            &cpg,
            &target,
            &no_spill,
            &[],
            SelectConfig::default(),
            1,
            &mut NoopTracer,
            &mut scratch,
        );
        assert!(!r1.spilled.is_empty(), "K4 on 3 regs must spill");
        assert!(
            scratch.used_capacity() > 0,
            "differential dropped its occupancy buffer on the early return"
        );
        // Reuse: a second run from the same scratch is bit-identical.
        let r2 = select_traced_in(
            &g,
            &nm,
            &rpg,
            &cpg,
            &target,
            &no_spill,
            &[],
            SelectConfig::default(),
            1,
            &mut NoopTracer,
            &mut scratch,
        );
        assert_eq!(r1.assignment, r2.assignment);
        assert_eq!(r1.spilled, r2.spilled);
        r1.recycle(&mut scratch);
        r2.recycle(&mut scratch);
    }

    #[test]
    fn sequential_pairing_after_partner_allocated() {
        // 4 and 5 interfere (paired values are simultaneously live).
        let (mut g, nm) = setup(2, &[(3, 4), (3, 5), (4, 5)]);
        let mut rpg = Rpg::new(nm.num_nodes());
        rpg.add(
            n(4),
            Preference {
                kind: PrefKind::SequentialPlus,
                target: PrefTarget::Node(n(5)),
                strength_vol: 50,
                strength_nonvol: 48,
            },
        );
        rpg.add(
            n(5),
            Preference {
                kind: PrefKind::SequentialMinus,
                target: PrefTarget::Node(n(4)),
                strength_vol: 50,
                strength_nonvol: 48,
            },
        );
        let r = run_select(&mut g, &nm, &rpg, SelectConfig::default());
        let (a, b) = (r.assignment[4].unwrap(), r.assignment[5].unwrap());
        // figure7 uses the different-parity rule.
        assert!(TargetDesc::figure7().pair_allows(a, b));
    }
}
