//! Graph simplification (the *simplify* phase of Chaitin-style coloring).
//!
//! Repeatedly removes a low-degree node (fewer than K live neighbors) and
//! records the removal order. When only significant-degree nodes remain, a
//! spill candidate is chosen by the classic `spill_cost / degree` metric:
//!
//! * in [`SimplifyMode::Chaitin`] the candidate is marked for spilling and
//!   excluded from the stack — the caller must insert spill code and retry;
//! * in [`SimplifyMode::Optimistic`] (Briggs) the candidate is removed
//!   *optimistically* and pushed like any other node, deferring the spill
//!   decision to the select phase.
//!
//! The low-degree scan is worklist-driven: a min-heap of candidate node
//! ids is seeded with every initially low-degree node, and each removal
//! pushes exactly the neighbors whose degree crosses below K. Because no
//! edges are added during simplification, degrees only fall, so a node
//! enters the heap at most once and the heap minimum is always the
//! lowest-id low-degree active node — the same node the previous
//! full-rescan implementation picked, preserving removal order (and
//! therefore the pinned decision traces) bit for bit.

use crate::ifg::InterferenceGraph;
use crate::node::NodeId;
use pdgc_arena::{Taken, VecPool};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Resettable scratch for [`simplify_in`]: the worklist heap plus pooled
/// result vectors.
#[derive(Debug, Default)]
pub struct SimplifyScratch {
    heap: BinaryHeap<Reverse<usize>>,
    nodes: VecPool<NodeId>,
}

impl SimplifyScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity of the pooled worklist heap (diagnostic; used by the
    /// take/restore regression tests).
    pub fn heap_capacity(&self) -> usize {
        self.heap.capacity()
    }
}

/// Which spill policy simplification follows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimplifyMode {
    /// Chaitin: blocked graphs yield definite spill decisions.
    Chaitin,
    /// Briggs: blocked graphs yield optimistic (potential) spills.
    Optimistic,
}

/// The outcome of simplification.
#[derive(Clone, Debug)]
pub struct SimplifyResult {
    /// Nodes in removal order (index 0 removed first). Chaitin select
    /// colors in *reverse* of this order.
    pub stack: Vec<NodeId>,
    /// The subset of `stack` removed optimistically (potential spills).
    pub optimistic: Vec<NodeId>,
    /// Chaitin mode only: nodes decided to spill (not on the stack).
    pub chaitin_spills: Vec<NodeId>,
}

impl SimplifyResult {
    /// Whether a Chaitin-mode run decided any spills.
    pub fn must_spill(&self) -> bool {
        !self.chaitin_spills.is_empty()
    }

    /// Returns this result's vectors to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut SimplifyScratch) {
        scratch.nodes.put(self.stack);
        scratch.nodes.put(self.optimistic);
        scratch.nodes.put(self.chaitin_spills);
    }
}

/// Runs simplification on (a mutable view of) the interference graph.
///
/// `k` is the number of colors; `spill_costs[n]` is the (frequency-
/// weighted) cost of spilling node `n`, with `u64::MAX` marking nodes that
/// must never be chosen (spill temporaries). Precolored nodes are never
/// removed. The graph is left with all live-range nodes removed; callers
/// typically [`InterferenceGraph::restore_all`] before the select phase.
///
/// # Panics
///
/// Panics if the graph blocks and every remaining candidate is unspillable
/// — this means spill temporaries alone exceed the register file, which no
/// Chaitin-family allocator can handle.
pub fn simplify(
    ifg: &mut InterferenceGraph,
    k: usize,
    spill_costs: &[u64],
    mode: SimplifyMode,
) -> SimplifyResult {
    simplify_in(ifg, k, spill_costs, mode, &mut SimplifyScratch::default())
}

/// Like [`simplify`], drawing the worklist heap and result vectors from
/// pooled scratch. Recycle the result with [`SimplifyResult::recycle`].
///
/// The heap is held through a [`Taken`] drop-guard: even the
/// unspillable-blocked panic path restores its buffer to the scratch, so
/// reuse never degrades to per-call allocation.
pub fn simplify_in(
    ifg: &mut InterferenceGraph,
    k: usize,
    spill_costs: &[u64],
    mode: SimplifyMode,
    scratch: &mut SimplifyScratch,
) -> SimplifyResult {
    let mut result = SimplifyResult {
        stack: scratch.nodes.take(),
        optimistic: scratch.nodes.take(),
        chaitin_spills: scratch.nodes.take(),
    };
    // Min-heap of low-degree candidates, by node id: popping the minimum
    // reproduces the lowest-id-first removal order of a full rescan.
    let mut worklist = Taken::new(&mut scratch.heap);
    worklist.clear();
    worklist.extend(
        (ifg.num_phys()..ifg.num_nodes())
            .map(NodeId::new)
            .filter(|&n| !ifg.is_merged(n) && !ifg.is_removed(n) && ifg.degree(n) < k)
            .map(|n| Reverse(n.index())),
    );
    let mut remaining = (ifg.num_phys()..ifg.num_nodes())
        .map(NodeId::new)
        .filter(|&n| !ifg.is_merged(n) && !ifg.is_removed(n))
        .count();

    // Removes `n`, pushing neighbors whose degree just crossed below K.
    let pop_neighbors =
        |ifg: &mut InterferenceGraph, n: NodeId, worklist: &mut BinaryHeap<Reverse<usize>>| {
            ifg.remove(n);
            for &x in ifg.neighbors_slice(n) {
                if !ifg.is_removed(x) && !ifg.is_precolored(x) && ifg.degree(x) + 1 == k {
                    worklist.push(Reverse(x.index()));
                }
            }
        };

    while remaining > 0 {
        // Drain the worklist, skipping stale entries defensively (the
        // threshold-crossing push discipline should never produce one).
        if let Some(Reverse(i)) = worklist.pop() {
            let n = NodeId::new(i);
            if ifg.is_removed(n) {
                continue;
            }
            debug_assert!(ifg.degree(n) < k, "worklist entry regained degree");
            pop_neighbors(ifg, n, &mut *worklist);
            result.stack.push(n);
            remaining -= 1;
            continue;
        }
        // Blocked: every active node is significant-degree. Scan for the
        // best spill candidate without materializing the active set.
        let cand = (ifg.num_phys()..ifg.num_nodes())
            .map(NodeId::new)
            .filter(|&n| !ifg.is_merged(n) && !ifg.is_removed(n))
            .filter(|&n| spill_costs[n.index()] != u64::MAX)
            .min_by(|&a, &b| {
                // cost/degree ascending; compare cross-multiplied to stay
                // in integers, falling back to id for determinism.
                let lhs = spill_costs[a.index()] as u128 * ifg.degree(b) as u128;
                let rhs = spill_costs[b.index()] as u128 * ifg.degree(a) as u128;
                lhs.cmp(&rhs).then(a.index().cmp(&b.index()))
            })
            .unwrap_or_else(|| {
                panic!("simplify: graph blocked with only unspillable nodes (K={k})")
            });
        pop_neighbors(ifg, cand, &mut *worklist);
        remaining -= 1;
        match mode {
            SimplifyMode::Chaitin => result.chaitin_spills.push(cand),
            SimplifyMode::Optimistic => {
                result.stack.push(cand);
                result.optimistic.push(cand);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// K4 over nodes 0..4 (no precolored).
    fn k4() -> InterferenceGraph {
        let mut g = InterferenceGraph::new(4, 0);
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(n(a), n(b));
            }
        }
        g
    }

    #[test]
    fn triangle_simplifies_with_three_colors() {
        let mut g = InterferenceGraph::new(3, 0);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(0), n(2));
        let costs = vec![10; 3];
        let r = simplify(&mut g, 3, &costs, SimplifyMode::Optimistic);
        assert_eq!(r.stack.len(), 3);
        assert!(r.optimistic.is_empty());
        assert!(r.chaitin_spills.is_empty());
    }

    #[test]
    fn k4_with_three_colors_chaitin_spills_cheapest() {
        let mut g = k4();
        let costs = vec![40, 10, 30, 20];
        let r = simplify(&mut g, 3, &costs, SimplifyMode::Chaitin);
        assert_eq!(r.chaitin_spills, vec![n(1)]); // cheapest spill cost
        assert_eq!(r.stack.len(), 3); // the rest simplified after removal
    }

    #[test]
    fn k4_with_three_colors_optimistic_pushes_candidate() {
        let mut g = k4();
        let costs = vec![40, 10, 30, 20];
        let r = simplify(&mut g, 3, &costs, SimplifyMode::Optimistic);
        assert_eq!(r.stack.len(), 4);
        assert_eq!(r.optimistic, vec![n(1)]);
        assert_eq!(r.stack[0], n(1)); // removed first (while blocked)
    }

    #[test]
    fn unspillable_nodes_skipped_as_candidates() {
        let mut g = k4();
        let costs = vec![u64::MAX, u64::MAX, 30, 20];
        let r = simplify(&mut g, 3, &costs, SimplifyMode::Optimistic);
        assert_eq!(r.optimistic, vec![n(3)]);
    }

    #[test]
    fn spill_metric_divides_by_degree() {
        // Node 0: cost 30, degree 3; node 4: cost 20, degree 1 after
        // surrounding structure... build: star where center 0 has degree 3
        // (cost/deg = 10) vs leaf pair with cost/deg 20. K=1 forces spills.
        let mut g = InterferenceGraph::new(4, 0);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(2));
        g.add_edge(n(0), n(3));
        g.add_edge(n(1), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(2), n(3));
        let costs = vec![30, 80, 80, 80];
        let r = simplify(&mut g, 2, &costs, SimplifyMode::Chaitin);
        // All degrees equal (3): candidate is pure lowest cost.
        assert_eq!(r.chaitin_spills[0], n(0));
    }

    #[test]
    fn precolored_nodes_stay() {
        let mut g = InterferenceGraph::new(4, 2);
        g.add_edge(n(2), n(3));
        let costs = vec![0, 0, 5, 5];
        let r = simplify(&mut g, 2, &costs, SimplifyMode::Optimistic);
        assert_eq!(r.stack.len(), 2);
        assert!(!g.is_removed(n(0)));
        assert!(!g.is_removed(n(1)));
    }

    #[test]
    fn stack_order_low_degree_first_by_id() {
        // Chain 0-1-2: all low-degree for K=3; removal order is by id.
        let mut g = InterferenceGraph::new(3, 0);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let costs = vec![1; 3];
        let r = simplify(&mut g, 3, &costs, SimplifyMode::Optimistic);
        assert_eq!(r.stack, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn worklist_matches_rescan_order_on_unblocking_chain() {
        // A "caterpillar" where removing the blocked candidate unblocks
        // lower-id nodes: the worklist must still emit them lowest-id
        // first, exactly like the old full rescan.
        let mut g = InterferenceGraph::new(6, 0);
        for a in 0..5 {
            for b in (a + 1)..5 {
                g.add_edge(n(a), n(b)); // K5 over 0..5
            }
        }
        g.add_edge(n(5), n(0));
        let costs = vec![50, 40, 30, 20, 10, 60];
        let r = simplify(&mut g, 3, &costs, SimplifyMode::Optimistic);
        // 5 is low-degree (1) and lowest-available first; then the K5
        // blocks, spilling cheapest 4, then 3; then 0,1,2 drain by id.
        assert_eq!(r.stack, vec![n(5), n(4), n(3), n(0), n(1), n(2)]);
        assert_eq!(r.optimistic, vec![n(4), n(3)]);
    }
}
