//! Spill-code insertion (Chaitin-style live-range splitting).
//!
//! A spilled live range is "split into smaller live ranges by spilling out
//! the value after its definitions and spilling in before its uses" (§2).
//! Each def site gets a fresh temporary stored to the range's frame slot;
//! each use site gets a fresh temporary reloaded just before. The
//! temporaries have tiny live ranges and are marked unspillable for
//! subsequent rounds.
//!
//! When the caller hands over an SPL region decomposition
//! ([`insert_spill_code_fwd`]), the pass additionally *forwards* reloaded
//! (or just-stored) values along the decomposition's linear runs: inside a
//! block, and across an edge that the region tree proves is the only way
//! into the next block, a temporary that already holds the slot's value
//! serves later uses directly instead of reloading per use. Forwarding
//! lengthens temporary live ranges (they are unspillable), so the pipeline
//! only enables it for the first [`SPL_FORWARD_MAX_ROUNDS`] spill rounds —
//! late rounds revert to minimal per-use reloads to guarantee convergence.

use pdgc_analysis::Spl;
use pdgc_ir::{Block, Function, Inst, VReg};

/// Last spill round in which run-based reload forwarding stays enabled;
/// later rounds insert minimal per-use reloads only.
pub const SPL_FORWARD_MAX_ROUNDS: usize = 4;

/// The result of one spill-insertion pass.
#[derive(Clone, Debug, Default)]
pub struct SpillOutcome {
    /// Fresh temporaries created (callers mark them unspillable).
    pub new_temps: Vec<VReg>,
    /// Reload instructions inserted.
    pub loads: usize,
    /// Spill-store instructions inserted.
    pub stores: usize,
    /// Reloads avoided by forwarding an already-available temporary.
    pub forwarded: usize,
}

/// Splits every register in `spilled`, assigning each a fresh frame slot
/// starting at `*next_slot` (updated).
///
/// # Panics
///
/// Panics if a spilled register has uses but no definition anywhere
/// (an unlowered parameter — the pipeline lowers parameters into explicit
/// copies before allocating).
pub fn insert_spill_code(
    func: &mut Function,
    spilled: &[VReg],
    next_slot: &mut u32,
) -> SpillOutcome {
    insert_spill_code_fwd(func, spilled, next_slot, None)
}

/// [`insert_spill_code`] with reload forwarding along SPL linear runs.
///
/// With `regions: None` (or a decomposition whose [`Spl::is_spl`] is
/// false) this is exactly [`insert_spill_code`]: every use site reloads.
/// With an SPL-shaped decomposition, a temporary that already holds a
/// spilled value — from a reload or from the store after a def — serves
/// subsequent uses in the same block, and across a block boundary when
/// [`Spl::run_pred`] proves the boundary is a straight-line fall-through
/// (the next block's only entry). Frame slots are still written at every
/// def, so the memory image is identical either way; only redundant
/// reloads disappear.
///
/// # Panics
///
/// Same as [`insert_spill_code`].
pub fn insert_spill_code_fwd(
    func: &mut Function,
    spilled: &[VReg],
    next_slot: &mut u32,
    regions: Option<&Spl>,
) -> SpillOutcome {
    let mut outcome = SpillOutcome::default();
    if spilled.is_empty() {
        return outcome;
    }
    let forwarding = regions.is_some_and(Spl::is_spl);
    // Per original vreg: the fresh temporary currently holding its value,
    // valid for the block whose index is `avail_owner` (and, via
    // `run_pred`, into that block's unique fall-through successor).
    let mut avail: Vec<Option<VReg>> = if forwarding {
        vec![None; func.num_vregs()]
    } else {
        Vec::new()
    };
    let mut avail_owner: Option<usize> = None;
    // Temporaries that ended up serving extra sites. They no longer have
    // the tiny single-site live range that justifies the unspillable mark,
    // so they are dropped from `new_temps` below and stay spillable: if a
    // later round is squeezed, it can split them back into per-use
    // reloads instead of blocking the simplify stack.
    let mut widened: Vec<VReg> = Vec::new();
    let mut slot_of = vec![None; func.num_vregs()];
    let mut has_def = vec![false; func.num_vregs()];
    for b in func.block_ids() {
        for inst in &func.block(b).insts {
            if let Some(d) = inst.def() {
                has_def[d.index()] = true;
            }
        }
    }
    for &v in spilled {
        assert!(
            has_def[v.index()],
            "spilling {v} which has no definition (unlowered parameter?)"
        );
        // A duplicate would silently burn a second frame slot and leave the
        // first slot orphaned in `slot_of`.
        debug_assert!(
            slot_of[v.index()].is_none(),
            "duplicate spilled vreg {v}"
        );
        slot_of[v.index()] = Some(*next_slot);
        *next_slot += 1;
    }

    for bi in 0..func.num_blocks() {
        if forwarding {
            // The map's contents describe `avail_owner`'s end state; keep
            // them only when this block's sole entry is that very block's
            // sole exit (the run edge). Blocks are visited in id order, so
            // a run predecessor processed further back simply clears.
            let carried = avail_owner.is_some()
                && regions.unwrap().run_pred(Block::new(bi)).map(|p| p.index()) == avail_owner;
            if !carried {
                avail.iter_mut().for_each(|a| *a = None);
            }
        }
        // Taken-buffer audit: nothing between this take and the write-back
        // below can return early or panic on user input (slot lookups are
        // guarded by `slot_of` entries created above), so the block cannot
        // be left empty.
        let old = std::mem::take(&mut func.blocks[bi].insts);
        let mut new = Vec::with_capacity(old.len());
        for mut inst in old {
            // Reload before uses.
            let mut wanted: Vec<VReg> = Vec::new();
            inst.visit_uses(|u| {
                if slot_of[u.index()].is_some() && !wanted.contains(&u) {
                    wanted.push(u);
                }
            });
            for orig in wanted {
                if forwarding {
                    if let Some(t) = avail[orig.index()] {
                        // A live temporary already holds the slot's value.
                        outcome.forwarded += 1;
                        if !widened.contains(&t) {
                            widened.push(t);
                        }
                        let (o, t) = (orig, t);
                        inst.visit_uses_mut(|u| {
                            if *u == o {
                                *u = t;
                            }
                        });
                        continue;
                    }
                }
                let slot = slot_of[orig.index()].unwrap();
                let temp = func.vreg_classes.len();
                func.vreg_classes.push(func.vreg_classes[orig.index()]);
                let temp = VReg::new(temp);
                outcome.new_temps.push(temp);
                outcome.loads += 1;
                new.push(Inst::Reload { dst: temp, slot });
                if forwarding {
                    avail[orig.index()] = Some(temp);
                }
                let (o, t) = (orig, temp);
                inst.visit_uses_mut(|u| {
                    if *u == o {
                        *u = t;
                    }
                });
            }
            // A temporary forwarded across a call would be a call-crossing
            // live range — exactly what §5.4 active spilling pays Mem_Cost
            // to avoid (it would come back as caller save/restore pairs).
            // The slot is the value's home across calls; drop every
            // forwarding candidate at the boundary. (Reloads feeding the
            // call itself happened above and their temps die here.)
            if forwarding && inst.is_call() {
                avail.iter_mut().for_each(|a| *a = None);
            }
            // Store after defs.
            match inst.def() {
                Some(d) if slot_of[d.index()].is_some() => {
                    let slot = slot_of[d.index()].unwrap();
                    let temp = func.vreg_classes.len();
                    func.vreg_classes.push(func.vreg_classes[d.index()]);
                    let temp = VReg::new(temp);
                    outcome.new_temps.push(temp);
                    outcome.stores += 1;
                    if let Some(dm) = inst.def_mut() {
                        *dm = temp;
                    }
                    new.push(inst);
                    new.push(Inst::Spill { src: temp, slot });
                    if forwarding {
                        // The just-stored temporary is the freshest copy.
                        avail[d.index()] = Some(temp);
                    }
                }
                _ => new.push(inst),
            }
        }
        func.blocks[bi].insts = new;
        if forwarding {
            avail_owner = Some(bi);
        }
    }
    if !widened.is_empty() {
        outcome.new_temps.retain(|t| !widened.contains(t));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};

    #[test]
    fn def_and_uses_split() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin_imm(BinOp::Add, p, 1);
        let y = b.bin(BinOp::Mul, x, x);
        let z = b.bin(BinOp::Add, y, x);
        b.ret(Some(z));
        let f0 = b.finish();

        let mut f = f0.clone();
        let mut next = 0;
        let out = insert_spill_code(&mut f, &[x], &mut next);
        assert_eq!(next, 1);
        assert_eq!(out.stores, 1); // one def
        assert_eq!(out.loads, 2); // two use sites (y's double use counts once)
        assert_eq!(out.new_temps.len(), 3);
        assert!(f.verify().is_ok());
        // x itself no longer appears anywhere.
        let mut x_seen = false;
        for blk in &f.blocks {
            for i in &blk.insts {
                if i.def() == Some(x) {
                    x_seen = true;
                }
                i.visit_uses(|u| {
                    if u == x {
                        x_seen = true;
                    }
                });
            }
        }
        assert!(!x_seen);
        // Shape: add; spill; reload; mul; reload; add; ret
        let kinds: Vec<_> = f.blocks[0]
            .insts
            .iter()
            .map(|i| match i {
                Inst::Spill { .. } => "spill",
                Inst::Reload { .. } => "reload",
                Inst::Ret { .. } => "ret",
                _ => "op",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["op", "spill", "reload", "op", "reload", "op", "ret"]
        );
    }

    #[test]
    fn multiple_spills_get_distinct_slots() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin_imm(BinOp::Add, p, 1);
        let y = b.bin_imm(BinOp::Add, p, 2);
        let z = b.bin(BinOp::Add, x, y);
        b.ret(Some(z));
        let mut f = b.finish();
        let mut next = 5;
        insert_spill_code(&mut f, &[x, y], &mut next);
        assert_eq!(next, 7);
        let mut slots = vec![];
        for blk in &f.blocks {
            for i in &blk.insts {
                if let Inst::Spill { slot, .. } = i {
                    slots.push(*slot);
                }
            }
        }
        slots.sort();
        assert_eq!(slots, vec![5, 6]);
    }

    #[test]
    fn instruction_using_and_defining_same_reg() {
        // v = v + 1 pattern (non-SSA).
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        b.emit(Inst::BinImm {
            op: BinOp::Add,
            dst: p,
            lhs: p,
            imm: 1,
        });
        b.ret(Some(p));
        let mut f = b.finish();
        // p needs a def first (it is a parameter) — give it one.
        f.blocks[0].insts.insert(
            0,
            Inst::Iconst {
                dst: p,
                value: 3,
            },
        );
        let mut next = 0;
        let out = insert_spill_code(&mut f, &[p], &mut next);
        // defs: iconst + add = 2 stores; uses: add + ret = 2 loads.
        assert_eq!(out.stores, 2);
        assert_eq!(out.loads, 2);
        assert!(f.verify().is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate spilled vreg")]
    fn duplicate_spilled_vreg_panics_in_debug() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin_imm(BinOp::Add, p, 1);
        b.ret(Some(x));
        let mut f = b.finish();
        let mut next = 0;
        insert_spill_code(&mut f, &[x, x], &mut next);
    }

    #[test]
    #[should_panic(expected = "no definition")]
    fn spilling_undefined_register_panics() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        b.ret(Some(p));
        let mut f = b.finish();
        let mut next = 0;
        insert_spill_code(&mut f, &[p], &mut next);
    }
}
