//! The Coloring Precedence Graph (CPG) — §5.2 of the paper.
//!
//! Simplification produces a *total* order of register selection. That
//! order is sufficient for colorability but needlessly restrictive: many
//! nodes could be selected earlier or later without losing the guarantee.
//! The CPG relaxes the total order into a *partial* order — a DAG over live
//! ranges, with `top` and `bottom` sentinels — such that **any**
//! topological order preserves the colorability obtained by simplification.
//! The preference-directed select phase ([`crate::select`]) then walks the
//! DAG frontier, free to pick whichever ready node has the most at stake.
//!
//! Construction follows the paper's nine steps: replay the simplification
//! stack against a working interference graph (physical-register nodes
//! removed), detect which removals *enable* which ("removing one enables
//! the other's removal"), and record those enabling constraints as edges,
//! keeping the DAG transitively reduced.

use crate::ifg::InterferenceGraph;
use crate::node::NodeId;
use pdgc_arena::{NestedPool, VecPool};

/// Reusable storage for [`Cpg::build_in`]: the DAG's own vectors plus the
/// construction temporaries (working-graph flags, degrees, the reused
/// neighbor buffer, and the epoch-stamped reachability sweep). One scratch
/// serves any number of sequential builds; recycle each [`Cpg`] with
/// [`Cpg::recycle`] when done so the next build is allocation-free.
#[derive(Debug, Default)]
pub struct CpgScratch {
    flags: VecPool<bool>,
    adj: NestedPool<NodeId>,
    degree: VecPool<usize>,
    /// Reachability stamps: `stamp[i] == epoch` means "seen this sweep",
    /// so a new sweep is an increment, not an O(n) clear.
    stamp: VecPool<u32>,
    neighbors: Vec<NodeId>,
    reach_stack: Vec<NodeId>,
}

impl CpgScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The Coloring Precedence Graph over one class's live-range nodes.
///
/// An edge `u → v` means `u` must be selected (colored) before `v`.
/// `from_top(n)` marks edges from the `top` sentinel; `to_bottom(n)` marks
/// edges to the `bottom` sentinel.
#[derive(Clone, Debug)]
pub struct Cpg {
    k: usize,
    present: Vec<bool>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    from_top: Vec<bool>,
    to_bottom: Vec<bool>,
}

impl Cpg {
    /// Builds the CPG from the (fully restored) interference graph and a
    /// simplification result.
    ///
    /// * `stack` — nodes in removal order (the reverse of the coloring
    ///   order), as produced by [`crate::simplify::simplify`];
    /// * `optimistic` — the potential-spill subset of `stack` (step 4
    ///   creates them eagerly but unready);
    /// * `k` — the number of colors.
    ///
    /// Precolored and merged nodes never appear in the CPG; the working
    /// graph counts only live-range neighbors (the paper's step 2 removes
    /// physical-register nodes).
    pub fn build(
        ifg: &InterferenceGraph,
        stack: &[NodeId],
        optimistic: &[NodeId],
        k: usize,
    ) -> Cpg {
        Self::build_in(ifg, stack, optimistic, k, &mut CpgScratch::default())
    }

    /// Like [`Cpg::build`], drawing the DAG's storage and every
    /// construction temporary from pooled scratch. Return the DAG with
    /// [`Cpg::recycle`] when done.
    pub fn build_in(
        ifg: &InterferenceGraph,
        stack: &[NodeId],
        optimistic: &[NodeId],
        k: usize,
        scratch: &mut CpgScratch,
    ) -> Cpg {
        let n = ifg.num_nodes();
        let mut cpg = Cpg {
            k,
            present: scratch.flags.take_filled(n, false),
            succs: scratch.adj.take(n),
            preds: scratch.adj.take(n),
            from_top: scratch.flags.take_filled(n, false),
            to_bottom: scratch.flags.take_filled(n, false),
        };

        let is_lr = |x: NodeId| !ifg.is_precolored(x) && !ifg.is_merged(x);
        // Working interference graph: live-range nodes of the stack.
        let mut removed = scratch.flags.take_filled(n, false);
        let mut degree = scratch.degree.take_filled(n, 0);
        for &x in stack {
            degree[x.index()] = ifg
                .neighbors_slice(x)
                .iter()
                .filter(|&&y| is_lr(y))
                .count();
        }

        let mut ready = scratch.flags.take_filled(n, false);

        // Step 4: initial low-degree nodes, then spilled (optimistic) nodes.
        for &x in stack {
            if degree[x.index()] < k {
                cpg.present[x.index()] = true;
                cpg.to_bottom[x.index()] = true;
                ready[x.index()] = true;
            }
        }
        for &x in optimistic {
            if !cpg.present[x.index()] {
                cpg.present[x.index()] = true;
                cpg.to_bottom[x.index()] = true;
                // not ready
            }
        }

        // Epoch-stamped "seen" marks for the per-pop reachability sweep:
        // bumping the epoch invalidates the whole previous sweep at once.
        let mut stamp = scratch.stamp.take_filled(n, 0);
        let mut epoch = 0u32;
        let mut reach_stack = std::mem::take(&mut scratch.reach_stack);
        let mut neighbors = std::mem::take(&mut scratch.neighbors);

        // Steps 5–9: replay removals.
        for &popped in stack {
            removed[popped.index()] = true;
            cpg.present[popped.index()] = true;
            neighbors.clear();
            neighbors.extend(
                ifg.neighbors_slice(popped)
                    .iter()
                    .copied()
                    .filter(|&y| is_lr(y) && !removed[y.index()]),
            );
            let mut any_non_ready = false;
            for &x in &neighbors {
                cpg.present[x.index()] = true;
                any_non_ready |= !ready[x.index()];
            }
            if !any_non_ready {
                cpg.from_top[popped.index()] = true;
            } else {
                // Transitive reduction, exploiting the construction order:
                // all edges point *into* the node being popped, so (1) no
                // path can reach `popped` yet, and (2) the unpopped sources
                // cannot reach each other (their successors are all
                // previously-popped nodes). The only reducible edges are
                // existing `x → w` made transitive by the new `x → popped`
                // with `popped →* w` — computable with ONE reachability
                // sweep from `popped`.
                epoch += 1;
                stamp[popped.index()] = epoch;
                reach_stack.clear();
                reach_stack.push(popped);
                while let Some(x) = reach_stack.pop() {
                    for &y in &cpg.succs[x.index()] {
                        if stamp[y.index()] != epoch {
                            stamp[y.index()] = epoch;
                            reach_stack.push(y);
                        }
                    }
                }
                for &x in &neighbors {
                    if ready[x.index()] {
                        continue;
                    }
                    cpg.succs[x.index()].retain(|&w| {
                        let keep = stamp[w.index()] != epoch;
                        if !keep {
                            cpg.preds[w.index()].retain(|&p| p != x);
                        }
                        keep
                    });
                    cpg.succs[x.index()].push(popped);
                    cpg.preds[popped.index()].push(x);
                }
            }
            // Step 8: removal may make neighbors low-degree.
            for &x in &neighbors {
                degree[x.index()] -= 1;
                if degree[x.index()] < k {
                    ready[x.index()] = true;
                }
            }
        }
        scratch.flags.put(removed);
        scratch.flags.put(ready);
        scratch.degree.put(degree);
        scratch.stamp.put(stamp);
        scratch.reach_stack = reach_stack;
        scratch.neighbors = neighbors;
        cpg
    }

    /// Returns the DAG's storage to `scratch` for the next build.
    pub fn recycle(self, scratch: &mut CpgScratch) {
        scratch.flags.put(self.present);
        scratch.flags.put(self.from_top);
        scratch.flags.put(self.to_bottom);
        scratch.adj.put(self.succs);
        scratch.adj.put(self.preds);
    }

    /// Whether `to` is reachable from `from` along CPG edges (reflexive).
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.succs.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(x) = stack.pop() {
            for &y in &self.succs[x.index()] {
                if y == to {
                    return true;
                }
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    stack.push(y);
                }
            }
        }
        false
    }

    /// The number of colors the CPG was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether `n` participates in the CPG.
    pub fn contains(&self, n: NodeId) -> bool {
        self.present[n.index()]
    }

    /// All CPG nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Successors of `n` (excluding `bottom`).
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n.index()]
    }

    /// Predecessors of `n` (excluding `top`).
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n.index()]
    }

    /// Whether `top → n` exists.
    pub fn from_top(&self, n: NodeId) -> bool {
        self.from_top[n.index()]
    }

    /// Whether `n → bottom` exists.
    pub fn to_bottom(&self, n: NodeId) -> bool {
        self.to_bottom[n.index()]
    }

    /// Whether the explicit edge `u → v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succs[u.index()].contains(&v)
    }

    /// The initial ready frontier: the successors of `top`.
    pub fn initial_queue(&self) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.preds(n).is_empty()).collect()
    }

    /// Checks acyclicity (used by property tests).
    pub fn is_acyclic(&self) -> bool {
        let n = self.succs.len();
        let mut indeg = vec![0usize; n];
        for u in self.nodes() {
            for &v in self.succs(u) {
                indeg[v.index()] += 1;
            }
        }
        let mut queue: Vec<NodeId> = self.nodes().filter(|&x| indeg[x.index()] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in self.succs(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        seen == self.nodes().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// The paper's Figure 7 interference graph over v0..v4 (nodes 0..4),
    /// no precolored nodes (the WIG drops them anyway).
    fn figure7_ifg() -> InterferenceGraph {
        let mut g = InterferenceGraph::new(5, 0);
        g.add_edge(n(0), n(1)); // v0 - v1
        g.add_edge(n(0), n(2)); // v0 - v2
        g.add_edge(n(1), n(2)); // v1 - v2
        g.add_edge(n(1), n(3)); // v1 - v3
        g.add_edge(n(2), n(3)); // v2 - v3
        g.add_edge(n(3), n(4)); // v3 - v4
        g
    }

    /// Figure 7(d)/(e): the paper's stack (removal order v0, v4, v1, v2,
    /// v3) yields exactly the CPG of Figure 7(e) for K = 3.
    #[test]
    fn figure7_cpg_k3() {
        let g = figure7_ifg();
        let stack = vec![n(0), n(4), n(1), n(2), n(3)];
        let cpg = Cpg::build(&g, &stack, &[], 3);

        // v0, v4 are the initial ready nodes pointing at bottom.
        assert!(cpg.to_bottom(n(0)));
        assert!(cpg.to_bottom(n(4)));
        assert!(!cpg.to_bottom(n(1)));
        // Edges of Figure 7(e).
        assert!(cpg.has_edge(n(1), n(0)));
        assert!(cpg.has_edge(n(2), n(0)));
        assert!(cpg.has_edge(n(3), n(4)));
        // Top feeds v1, v2, v3.
        assert!(cpg.from_top(n(1)));
        assert!(cpg.from_top(n(2)));
        assert!(cpg.from_top(n(3)));
        assert!(!cpg.from_top(n(0)));
        assert!(!cpg.from_top(n(4)));
        // And nothing else.
        let total_edges: usize = cpg.nodes().map(|x| cpg.succs(x).len()).sum();
        assert_eq!(total_edges, 3);
        assert_eq!(cpg.initial_queue(), vec![n(1), n(2), n(3)]);
        assert!(cpg.is_acyclic());
    }

    /// Figure 7(f): with K ≥ 4 every node is initially low-degree, so the
    /// order collapses — top feeds everything, everything points at bottom.
    #[test]
    fn figure7_cpg_k4_fully_parallel() {
        let g = figure7_ifg();
        let stack = vec![n(0), n(4), n(1), n(2), n(3)];
        let cpg = Cpg::build(&g, &stack, &[], 4);
        for i in 0..5 {
            assert!(cpg.from_top(n(i)), "v{i} should hang off top");
            assert!(cpg.to_bottom(n(i)), "v{i} should point at bottom");
            assert!(cpg.succs(n(i)).is_empty());
        }
        assert_eq!(cpg.initial_queue().len(), 5);
    }

    /// A different (also valid) simplification order yields a different
    /// but still colorability-preserving partial order.
    #[test]
    fn alternative_stack_still_acyclic_and_covering() {
        let g = figure7_ifg();
        let stack = vec![n(0), n(1), n(2), n(3), n(4)];
        let cpg = Cpg::build(&g, &stack, &[], 3);
        assert!(cpg.is_acyclic());
        assert_eq!(cpg.nodes().count(), 5);
        // v0 was removed while v1, v2 were significant: both precede it.
        assert!(cpg.has_edge(n(1), n(0)));
        assert!(cpg.has_edge(n(2), n(0)));
    }

    /// Optimistically spilled nodes join the CPG unready: they acquire
    /// predecessors like everyone else but never gate others from the
    /// start.
    #[test]
    fn optimistic_node_enters_unready() {
        // K4 complete graph with K=3: one node spills optimistically.
        let mut g = InterferenceGraph::new(4, 0);
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(n(a), n(b));
            }
        }
        // Stack as Briggs would produce: 0 removed blocked (optimistic),
        // then 1, 2, 3.
        let stack = vec![n(0), n(1), n(2), n(3)];
        let cpg = Cpg::build(&g, &stack, &[n(0)], 3);
        assert!(cpg.to_bottom(n(0)));
        assert!(cpg.is_acyclic());
        // 0 is unready at its creation, so when it is popped its
        // (non-ready) neighbors point at it... all of 1,2,3 become ready
        // after 0's removal (degree 2 < 3), so they are pointed from top.
        assert!(cpg.from_top(n(1)));
        assert!(cpg.from_top(n(2)));
        assert!(cpg.from_top(n(3)));
        // 0 has predecessors 1, 2, 3 — wait: edges point from non-ready
        // neighbors *to the popped node*; when 0 popped, neighbors 1, 2, 3
        // are non-ready (degree 3), so 1→0, 2→0, 3→0.
        assert_eq!(cpg.preds(n(0)).len(), 3);
        assert_eq!(cpg.initial_queue(), vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn transitive_reduction_drops_redundant_edge() {
        // Path graph 0-1, 1-2, 0-2 (triangle) with K=1: removal order
        // 0, 1, 2 forces chains; ensure no duplicate/transitive edges.
        let mut g = InterferenceGraph::new(3, 0);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(0), n(2));
        let stack = vec![n(0), n(1), n(2)];
        let cpg = Cpg::build(&g, &stack, &[n(0), n(1), n(2)], 1);
        // With K=1 nothing is ever ready: popping 0 adds 1→0 and 2→0;
        // popping 1 adds 2→1. Edge 2→0 is now transitive (2→1→0) and must
        // have been removed.
        assert!(cpg.has_edge(n(1), n(0)));
        assert!(cpg.has_edge(n(2), n(1)));
        assert!(!cpg.has_edge(n(2), n(0)));
        assert!(cpg.reachable(n(2), n(0)));
        assert!(cpg.is_acyclic());
    }
}
