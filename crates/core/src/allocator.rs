//! The public allocator API and the paper's allocator (Figure 8).

use crate::cpg::Cpg;
use crate::pipeline::{
    run_pipeline, run_pipeline_scratch_checked, run_pipeline_traced, Analyses, ClassCtx,
    ClassStrategy, RoundOutcome,
};
use crate::rpg::build_rpg;
use crate::scratch::PhaseScratch;
use crate::select::{select_traced_in, SelectConfig};
use crate::simplify::{simplify_in, SimplifyMode};
use pdgc_ir::Function;
use pdgc_obs::{with_span, Event, GraphKind, Phase, Tracer};
use pdgc_target::TargetDesc;

pub use crate::pipeline::{AllocError, AllocOutput};
pub use crate::rpg::PreferenceSet;
pub use pdgc_check::{CheckMode, CheckScope};

/// A complete register allocator: lowers, colors, spills, and rewrites.
///
/// Implemented by [`PreferenceAllocator`] and every baseline in
/// [`crate::baselines`], so harnesses can drive them interchangeably.
pub trait RegisterAllocator {
    /// A short identifier used in reports (e.g. `"full-preference"`).
    fn name(&self) -> &'static str;

    /// Allocates `func` against `target`.
    ///
    /// # Errors
    ///
    /// See [`AllocError`].
    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError>;

    /// Allocates `func` with an attached [`Tracer`] receiving phase spans
    /// and (for tracing-aware allocators) decision events.
    ///
    /// The default ignores the tracer and defers to [`Self::allocate`];
    /// every allocator in this crate overrides it to route through
    /// [`run_pipeline_traced`]. Tracing never changes the allocation: with
    /// any tracer the result is bit-identical to the untraced run.
    ///
    /// # Errors
    ///
    /// See [`AllocError`].
    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        _tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        self.allocate(func, target)
    }

    /// [`Self::allocate_traced`] followed by the post-allocation symbolic
    /// checker (`pdgc-check`) when `check` says so: the result is
    /// independently proven semantics-preserving before it is returned.
    ///
    /// # Errors
    ///
    /// See [`AllocError`]; additionally [`AllocError::CheckFailed`] when
    /// the checker finds a violation.
    fn allocate_checked(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: CheckMode,
    ) -> Result<AllocOutput, AllocError> {
        let out = self.allocate_traced(func, target, tracer)?;
        crate::pipeline::check_output(&out, target, tracer, check)?;
        Ok(out)
    }

    /// [`Self::allocate_checked`] drawing every phase's working storage
    /// from a per-worker [`PhaseScratch`] and scoping the checker with
    /// `scope`. Batch drivers keep one scratch per worker thread and call
    /// this in a loop; after the pools warm up the steady state performs
    /// (near) zero heap allocation per function.
    ///
    /// The default still allocates fresh storage (only the checker is
    /// pooled) and defers to [`Self::allocate_traced`]; scratch-aware
    /// allocators override it with the fully pooled pipeline. Either way
    /// the result is bit-identical to [`Self::allocate_checked`] with
    /// [`CheckScope::Full`], and the checker's runs land in
    /// `scratch.metrics` either way.
    ///
    /// # Errors
    ///
    /// See [`AllocError`]; additionally [`AllocError::CheckFailed`] when
    /// the checker finds a violation.
    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: CheckMode,
        scope: CheckScope,
        scratch: &mut PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        let out = self.allocate_traced(func, target, tracer)?;
        crate::pipeline::check_output_metered(&out, target, tracer, check, scope, scratch)?;
        Ok(out)
    }
}

/// The paper's allocator (Figure 8): renumber → build interference graph
/// and Register Preference Graph → optimistic simplify → build Coloring
/// Precedence Graph → integrated preference-directed select → spill &
/// iterate.
#[derive(Clone, Copy, Debug)]
pub struct PreferenceAllocator {
    prefs: PreferenceSet,
    pre_coalesce: bool,
}

impl PreferenceAllocator {
    /// The full-featured configuration ("full preference" in §6):
    /// coalescing, paired loads, dedicated registers, and
    /// volatile/non-volatile exploitation, with active spilling.
    pub fn full() -> Self {
        PreferenceAllocator {
            prefs: PreferenceSet::full(),
            pre_coalesce: false,
        }
    }

    /// The "only coalescing" configuration of §6.1: coalesce preferences
    /// only, non-volatile-first fallback selection, no active spilling.
    pub fn coalescing_only() -> Self {
        PreferenceAllocator {
            prefs: PreferenceSet::coalescing_only(),
            pre_coalesce: false,
        }
    }

    /// A custom preference mix (for ablation experiments).
    pub fn with_preferences(prefs: PreferenceSet) -> Self {
        PreferenceAllocator {
            prefs,
            pre_coalesce: false,
        }
    }

    /// Enables the §6.1 improvement the paper proposes as future work:
    /// "a technique to aggressively coalesce non spill-causing nodes
    /// could be added to the algorithm in Section 5.3". Copy-related
    /// pairs satisfying the Briggs/George conservative criteria are
    /// merged *before* simplification (guaranteed not to create spills);
    /// the remaining preferences are still resolved by the integrated
    /// select phase.
    pub fn with_precoalesce(mut self) -> Self {
        self.pre_coalesce = true;
        self
    }

    /// The preference kinds this instance resolves.
    pub fn preferences(&self) -> PreferenceSet {
        self.prefs
    }
}

impl ClassStrategy for PreferenceAllocator {
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome {
        let round = ctx.round as u32;
        let class = ctx.class;
        // No early return below: the class scratch taken here is always
        // moved back into `ctx` before the outcome is returned.
        let mut cls = std::mem::take(&mut ctx.scratch);
        let cost = ctx.cost_model(analyses);
        let rpg = build_rpg(ctx.func, &ctx.nodes, &cost, &ctx.copies, self.prefs, target);
        let mut costs = ctx.spill_costs.clone();
        if self.pre_coalesce {
            // Conservative (never spill-causing) merges before simplify.
            use crate::baselines::{briggs_conservative_ok, fold_spill_costs, george_ok};
            let t0 = std::time::Instant::now();
            with_span(tracer, Phase::Coalesce, round, Some(class), || loop {
                let mut merged = false;
                for c in &ctx.copies {
                    let a = ctx.ifg.rep(c.dst);
                    let b = ctx.ifg.rep(c.src);
                    if a == b || ctx.ifg.interferes(a, b) {
                        continue;
                    }
                    let ok = if ctx.ifg.is_precolored(a) {
                        george_ok(&ctx.ifg, a, b, ctx.k)
                    } else if ctx.ifg.is_precolored(b) {
                        george_ok(&ctx.ifg, b, a, ctx.k)
                    } else {
                        briggs_conservative_ok(&ctx.ifg, a, b, ctx.k)
                    };
                    if ok {
                        if ctx.ifg.is_precolored(b) {
                            ctx.ifg.merge(b, a);
                        } else {
                            ctx.ifg.merge(a, b);
                        }
                        merged = true;
                    }
                }
                if !merged {
                    break;
                }
            });
            cls.select
                .metrics
                .observe_latency(Phase::Coalesce, t0.elapsed().as_nanos() as u64);
            fold_spill_costs(&ctx.ifg, &mut costs);
            // A representative absorbing an unspillable temporary becomes
            // unspillable itself.
            for i in 0..ctx.nodes.num_nodes() {
                let n = crate::node::NodeId::new(i);
                if ctx.ifg.is_merged(n) && ctx.no_spill[i] {
                    ctx.no_spill[ctx.ifg.rep(n).index()] = true;
                }
            }
        }
        let t0 = std::time::Instant::now();
        let cpg = with_span(tracer, Phase::Simplify, round, Some(class), || {
            let sr = simplify_in(
                &mut ctx.ifg,
                ctx.k,
                &costs,
                SimplifyMode::Optimistic,
                &mut cls.simplify,
            );
            ctx.ifg.restore_all();
            let cpg = Cpg::build_in(&ctx.ifg, &sr.stack, &sr.optimistic, ctx.k, &mut cls.cpg);
            sr.recycle(&mut cls.simplify);
            cpg
        });
        cls.select
            .metrics
            .observe_latency(Phase::Simplify, t0.elapsed().as_nanos() as u64);
        if tracer.wants_graphs() {
            for (kind, dot) in [
                (GraphKind::Ifg, crate::dot::ifg_to_dot(&ctx.ifg, &ctx.nodes)),
                (GraphKind::Rpg, crate::dot::rpg_to_dot(&rpg, &ctx.nodes)),
                (GraphKind::Cpg, crate::dot::cpg_to_dot(&cpg, &ctx.nodes)),
            ] {
                tracer.record(&Event::GraphDump { round, class, kind, dot });
            }
        }
        let config = SelectConfig {
            active_spill: self.prefs.volatility,
            nonvolatile_first: !self.prefs.volatility,
        };
        // `with_span` can't wrap this call: select itself needs the tracer,
        // so the span is timed by hand around the traced select.
        let t0 = std::time::Instant::now();
        let res = select_traced_in(
            &ctx.ifg,
            &ctx.nodes,
            &rpg,
            &cpg,
            target,
            &ctx.no_spill,
            &ctx.spill_costs,
            config,
            round,
            tracer,
            &mut cls.select,
        );
        let select_nanos = t0.elapsed().as_nanos();
        cls.select
            .metrics
            .observe_latency(Phase::Select, select_nanos as u64);
        if tracer.enabled() {
            tracer.record(&Event::Span {
                phase: Phase::Select,
                round,
                class: Some(class),
                nanos: select_nanos,
            });
        }
        cpg.recycle(&mut cls.cpg);
        let mut assignment = res.assignment;
        let mut spilled = res.spilled;
        if self.pre_coalesce {
            // Merged nodes share their representative's fate.
            use crate::node::NodeId;
            let spilled_reps: Vec<NodeId> = spilled.clone();
            for i in 0..ctx.nodes.num_nodes() {
                let n = NodeId::new(i);
                if ctx.ifg.is_merged(n) {
                    let r = ctx.ifg.rep(n);
                    if spilled_reps.contains(&r) {
                        spilled.push(n);
                    } else if assignment[i].is_none() {
                        assignment[i] = assignment[r.index()];
                    }
                }
            }
        }
        ctx.scratch = cls;
        RoundOutcome { assignment, spilled }
    }
}

impl RegisterAllocator for PreferenceAllocator {
    fn name(&self) -> &'static str {
        match (self.prefs.volatility || self.prefs.sequential, self.pre_coalesce) {
            (true, true) => "full-preference+cc",
            (true, false) => "full-preference",
            (false, true) => "pdgc-coalescing+cc",
            (false, false) => "pdgc-coalescing-only",
        }
    }

    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError> {
        run_pipeline(func, target, self)
    }

    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_traced(func, target, self, tracer)
    }

    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: CheckMode,
        scope: CheckScope,
        scratch: &mut PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_scratch_checked(func, target, self, tracer, check, scope, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    #[test]
    fn full_allocator_handles_loop_with_call() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let exit = b.create_block();
        let acc0 = b.iconst(0);
        b.jump(header);
        b.switch_to(header);
        let x = b.load(p, 0);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, x, y);
        let r = b.call("g", vec![s], Some(RegClass::Int)).unwrap();
        let acc = b.bin(BinOp::Add, r, acc0);
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, acc, z, header, exit);
        b.switch_to(exit);
        b.ret(Some(acc));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = PreferenceAllocator::full().allocate(&f, &target).unwrap();
        // Plenty of registers: no spilling expected.
        assert_eq!(out.stats.spill_instructions, 0);
        // The paired load should have been fused.
        assert_eq!(out.stats.paired_loads, 1);
        // Lowering created copies; most should coalesce away.
        assert!(out.stats.moves_eliminated > 0);
    }

    #[test]
    fn coalescing_only_does_not_fuse_pairs_by_preference() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = PreferenceAllocator::coalescing_only()
            .allocate(&f, &target)
            .unwrap();
        // The rewriter may still fuse by luck, but nothing is guaranteed;
        // what matters is the run succeeds without volatility preferences.
        assert_eq!(out.stats.spill_instructions, 0);
    }

    #[test]
    fn names_differ_by_configuration() {
        assert_eq!(PreferenceAllocator::full().name(), "full-preference");
        assert_eq!(
            PreferenceAllocator::coalescing_only().name(),
            "pdgc-coalescing-only"
        );
    }

    #[test]
    fn high_pressure_forces_spills_but_converges() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let vals: Vec<_> = (0..8).map(|i| b.load(p, 16 + 32 * i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.bin(BinOp::Add, acc, v);
        }
        b.ret(Some(acc));
        let f = b.finish();
        let target = TargetDesc::toy(3);
        let out = PreferenceAllocator::full().allocate(&f, &target).unwrap();
        assert!(out.stats.spill_instructions > 0);
        assert!(out.stats.rounds >= 2);
    }
}
