//! Allocation nodes: the per-class universe the coloring graphs range over.
//!
//! Allocation runs independently per register class (integer and float
//! register files are disjoint). Within a class, the node universe is:
//!
//! * one *precolored* node per physical register that appears pinned in the
//!   lowered code (argument/return registers), numbered first;
//! * one node per ordinary virtual register of the class.
//!
//! Pinned virtual registers of the same physical register share a single
//! precolored node, exactly as Chaitin's "physical register nodes".

use pdgc_arena::{NestedPool, VecPool};
use pdgc_ir::{Function, RegClass, VReg};
use pdgc_target::{PhysReg, TargetDesc};
use std::fmt;

/// Resettable scratch pools for [`NodeMap::build_in`].
#[derive(Debug, Default)]
pub struct NodeScratch {
    vreg_node: VecPool<Option<NodeId>>,
    members: NestedPool<VReg>,
    referenced: VecPool<bool>,
}

impl NodeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A dense node index within one class's allocation universe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflow"))
    }

    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The mapping between one class's virtual registers and allocation nodes.
#[derive(Clone, Debug)]
pub struct NodeMap {
    class: RegClass,
    num_phys: usize,
    /// vreg index -> node (None when the vreg is of another class or dead).
    vreg_node: Vec<Option<NodeId>>,
    /// node -> the vregs it represents (several for precolored nodes).
    members: Vec<Vec<VReg>>,
}

impl NodeMap {
    /// Builds the node universe for `class`.
    ///
    /// `pinned` gives, per vreg, the physical register it is pinned to (from
    /// call lowering), if any. Every physical register of the class gets a
    /// precolored node (used or not) so node numbering is stable; vregs of
    /// the class that are referenced by at least one instruction get a
    /// live-range node.
    pub fn build(
        func: &Function,
        target: &TargetDesc,
        class: RegClass,
        pinned: &[Option<PhysReg>],
    ) -> Self {
        Self::build_in(func, target, class, pinned, &mut NodeScratch::default())
    }

    /// Like [`NodeMap::build`], drawing all storage from pooled scratch.
    /// Return the map with [`NodeMap::recycle`] when done.
    pub fn build_in(
        func: &Function,
        target: &TargetDesc,
        class: RegClass,
        pinned: &[Option<PhysReg>],
        scratch: &mut NodeScratch,
    ) -> Self {
        let num_phys = target.num_regs(class);
        let mut vreg_node = scratch.vreg_node.take_filled(func.num_vregs(), None);
        let mut members: Vec<Vec<VReg>> = scratch.members.take(num_phys);

        // Mark referenced vregs (parameters count as referenced).
        let mut referenced = scratch.referenced.take_filled(func.num_vregs(), false);
        for &p in &func.param_vregs {
            referenced[p.index()] = true;
        }
        for b in func.block_ids() {
            for inst in &func.block(b).insts {
                if let Some(d) = inst.def() {
                    referenced[d.index()] = true;
                }
                inst.visit_uses(|u| referenced[u.index()] = true);
            }
        }

        for i in 0..func.num_vregs() {
            let v = VReg::new(i);
            if func.class_of(v) != class || !referenced[i] {
                continue;
            }
            match pinned[i] {
                Some(reg) => {
                    debug_assert_eq!(reg.class(), class);
                    let node = NodeId::new(reg.index());
                    vreg_node[i] = Some(node);
                    members[reg.index()].push(v);
                }
                None => {
                    let node = NodeId::new(members.len());
                    vreg_node[i] = Some(node);
                    let mut m = scratch.members.take_inner();
                    m.push(v);
                    members.push(m);
                }
            }
        }
        scratch.referenced.put(referenced);

        NodeMap {
            class,
            num_phys,
            vreg_node,
            members,
        }
    }

    /// Returns this map's storage to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut NodeScratch) {
        scratch.vreg_node.put(self.vreg_node);
        scratch.members.put(self.members);
    }

    /// The register class of this universe.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Total number of nodes (precolored + live ranges).
    pub fn num_nodes(&self) -> usize {
        self.members.len()
    }

    /// Number of precolored nodes (= registers in the class).
    pub fn num_phys(&self) -> usize {
        self.num_phys
    }

    /// Whether `n` is a precolored (physical-register) node.
    pub fn is_precolored(&self, n: NodeId) -> bool {
        n.index() < self.num_phys
    }

    /// The physical register of a precolored node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is a live-range node.
    pub fn phys_reg(&self, n: NodeId) -> PhysReg {
        assert!(self.is_precolored(n), "{n} is not precolored");
        PhysReg::new(self.class, n.index() as u8)
    }

    /// The precolored node for a physical register of this class.
    pub fn node_of_reg(&self, reg: PhysReg) -> NodeId {
        assert_eq!(reg.class(), self.class);
        NodeId::new(reg.index())
    }

    /// The node of a vreg, if it belongs to this class and is referenced.
    pub fn node_of(&self, v: VReg) -> Option<NodeId> {
        self.vreg_node[v.index()]
    }

    /// The vregs represented by a node (one for live-range nodes; all
    /// same-register pinned vregs for precolored nodes).
    pub fn members(&self, n: NodeId) -> &[VReg] {
        &self.members[n.index()]
    }

    /// Iterates over the live-range (non-precolored) nodes.
    pub fn live_range_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_phys..self.members.len()).map(NodeId::new)
    }

    /// Iterates over all nodes.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.members.len()).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder};
    use pdgc_target::PressureModel;

    #[test]
    fn universe_layout() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, p);
        b.ret(Some(x));
        let mut f = b.finish();
        let dead = f.new_vreg(RegClass::Int); // never referenced
        let target = TargetDesc::ia64_like(PressureModel::High);
        let pinned = vec![None; f.num_vregs()];
        let nm = NodeMap::build(&f, &target, RegClass::Int, &pinned);

        assert_eq!(nm.num_phys(), 16);
        assert_eq!(nm.num_nodes(), 18); // 16 precolored + p + x
        assert!(nm.node_of(dead).is_none());
        let np = nm.node_of(p).unwrap();
        assert!(!nm.is_precolored(np));
        assert_eq!(nm.members(np), &[p]);
        assert!(nm.is_precolored(nm.node_of_reg(PhysReg::int(3))));
        assert_eq!(nm.phys_reg(NodeId::new(3)), PhysReg::int(3));
        assert_eq!(nm.live_range_nodes().count(), 2);
    }

    #[test]
    fn pinned_vregs_share_precolored_node() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let a = b.new_vreg(RegClass::Int);
        let c = b.new_vreg(RegClass::Int);
        let z = b.iconst(0);
        b.copy_to(a, z);
        b.copy_to(c, z);
        b.ret(None);
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let mut pinned = vec![None; f.num_vregs()];
        pinned[a.index()] = Some(PhysReg::int(0));
        pinned[c.index()] = Some(PhysReg::int(0));
        let nm = NodeMap::build(&f, &target, RegClass::Int, &pinned);
        assert_eq!(nm.node_of(a), nm.node_of(c));
        assert_eq!(nm.node_of(a), Some(NodeId::new(0)));
        assert_eq!(nm.members(NodeId::new(0)), &[a, c]);
    }

    #[test]
    fn classes_are_disjoint() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Float], None);
        let q = b.param(0);
        let s = b.bin(BinOp::FAdd, q, q);
        let base = b.iconst(1024);
        b.store(s, base, 0);
        b.ret(None);
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let pinned = vec![None; f.num_vregs()];
        let ni = NodeMap::build(&f, &target, RegClass::Int, &pinned);
        let nf = NodeMap::build(&f, &target, RegClass::Float, &pinned);
        assert!(ni.node_of(q).is_none());
        assert!(nf.node_of(q).is_some());
        assert!(nf.node_of(base).is_none());
        assert!(ni.node_of(base).is_some());
        assert_eq!(nf.live_range_nodes().count(), 2);
    }
}
