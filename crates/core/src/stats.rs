//! Allocation statistics — the quantities the paper's evaluation reports.

use pdgc_ir::RegClass;

/// Per-register-class statistics (the paper's Figure 9 reports the float
/// class separately for mpegaudio/mtrt).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClassStats {
    /// Copies of this class before allocation.
    pub copies_before: usize,
    /// Copies of this class removed by coalescing.
    pub moves_eliminated: usize,
    /// Copies of this class remaining.
    pub copies_remaining: usize,
    /// Spill reloads of this class.
    pub spill_loads: usize,
    /// Spill stores of this class.
    pub spill_stores: usize,
}

impl ClassStats {
    /// Total spill instructions of the class.
    pub fn spill_instructions(&self) -> usize {
        self.spill_loads + self.spill_stores
    }

    fn accumulate(&mut self, other: &ClassStats) {
        self.copies_before += other.copies_before;
        self.moves_eliminated += other.moves_eliminated;
        self.copies_remaining += other.copies_remaining;
        self.spill_loads += other.spill_loads;
        self.spill_stores += other.spill_stores;
    }
}

/// Statistics gathered over one function's allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AllocStats {
    /// Copies present before allocation (after ABI/φ lowering).
    pub copies_before: usize,
    /// Copies removed because source and destination received the same
    /// register — the paper's "eliminated move instructions by coalescing"
    /// (Figure 9 a/c).
    pub moves_eliminated: usize,
    /// Copies remaining in the machine code.
    pub copies_remaining: usize,
    /// Reloads inserted by spilling.
    pub spill_loads: usize,
    /// Stores inserted by spilling.
    pub spill_stores: usize,
    /// Total spill instructions — the paper's "generated spill code"
    /// (Figure 9 b/d).
    pub spill_instructions: usize,
    /// Caller-side save/restore instructions inserted around calls for
    /// live-across values held in volatile registers.
    pub caller_save_insts: usize,
    /// Distinct non-volatile registers the function uses (each costs a
    /// prologue/epilogue save+restore).
    pub nonvolatiles_used: usize,
    /// Paired loads fused by the rewriter.
    pub paired_loads: usize,
    /// Loads whose fusion window contained an address partner — a fusion
    /// *opportunity* whether or not register constraints allowed it, so
    /// `paired_loads / paired_candidates` is the sequential-preference
    /// satisfaction rate (always ≥ `paired_loads`).
    pub paired_candidates: usize,
    /// Zero-extensions inserted after byte loads whose destination is not
    /// byte-capable (the limited-usage preference failed or was absent).
    pub zero_extensions: usize,
    /// Allocation rounds (1 = no spilling iteration needed).
    pub rounds: usize,
    /// Frame slots used (spills plus caller-save shadows).
    pub frame_slots: u32,
    /// Integer-class breakdown.
    pub int: ClassStats,
    /// Float-class breakdown.
    pub float: ClassStats,
}

impl AllocStats {
    /// The breakdown for one class.
    pub fn class(&self, class: RegClass) -> &ClassStats {
        match class {
            RegClass::Int => &self.int,
            RegClass::Float => &self.float,
        }
    }

    /// Mutable breakdown for one class.
    pub fn class_mut(&mut self, class: RegClass) -> &mut ClassStats {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Float => &mut self.float,
        }
    }

    /// Element-wise accumulation (`rounds` takes the maximum).
    pub fn accumulate(&mut self, other: &AllocStats) {
        self.int.accumulate(&other.int);
        self.float.accumulate(&other.float);
        self.copies_before += other.copies_before;
        self.moves_eliminated += other.moves_eliminated;
        self.copies_remaining += other.copies_remaining;
        self.spill_loads += other.spill_loads;
        self.spill_stores += other.spill_stores;
        self.spill_instructions += other.spill_instructions;
        self.caller_save_insts += other.caller_save_insts;
        self.nonvolatiles_used += other.nonvolatiles_used;
        self.paired_loads += other.paired_loads;
        self.paired_candidates += other.paired_candidates;
        self.zero_extensions += other.zero_extensions;
        self.rounds = self.rounds.max(other.rounds);
        self.frame_slots += other.frame_slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_and_maxes() {
        let mut a = AllocStats {
            copies_before: 10,
            moves_eliminated: 8,
            rounds: 1,
            ..Default::default()
        };
        let b = AllocStats {
            copies_before: 5,
            moves_eliminated: 5,
            rounds: 3,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.copies_before, 15);
        assert_eq!(a.moves_eliminated, 13);
        assert_eq!(a.rounds, 3);
    }
}
