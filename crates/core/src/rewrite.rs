//! Post-allocation rewriting: IR → machine code.
//!
//! Applies the register assignment and performs the mechanical tail of
//! allocation:
//!
//! * **copy elimination** — a copy whose endpoints share a register
//!   disappears (this is where deferred coalescing pays off);
//! * **caller-side save/restore** — a value live across a call in a
//!   volatile register is saved before and restored after the call (the
//!   Appendix's `Save_Restore_Cost`);
//! * **paired-load fusion** — adjacent loads of consecutive words whose
//!   destinations satisfy the target's [`pdgc_target::PairedLoadRule`]
//!   become a single [`MInst::LoadPair`];
//! * **callee-save bookkeeping** — every written non-volatile register is
//!   recorded for the prologue/epilogue.

use crate::scratch::PhaseScratch;
use crate::stats::AllocStats;
use pdgc_analysis::{Cfg, Liveness};
use pdgc_ir::{Function, Inst, VReg};
use pdgc_target::{MInst, MachFunction, PhysReg, TargetDesc};
use std::collections::HashMap;

/// Applies `assignment` (one register per live virtual register) to the
/// lowered, spill-free function and produces machine code.
///
/// `spill_slots` is the number of frame slots already consumed by spill
/// code; caller-save shadow slots are allocated above it. Statistics are
/// accumulated into `stats`.
///
/// # Panics
///
/// Panics if a referenced virtual register has no assignment.
pub fn rewrite(
    func: &Function,
    assignment: &[Option<PhysReg>],
    target: &TargetDesc,
    spill_slots: u32,
    stats: &mut AllocStats,
) -> MachFunction {
    rewrite_in(
        func,
        assignment,
        target,
        spill_slots,
        stats,
        &mut PhaseScratch::default(),
    )
}

/// [`rewrite`] drawing its liveness sets and the machine function's block
/// storage from pooled scratch.
///
/// The block storage escapes inside the returned [`MachFunction`]; it
/// returns to the pool when the caller recycles the surrounding
/// [`crate::pipeline::AllocOutput`]. With a fresh scratch this is exactly
/// [`rewrite`].
///
/// # Panics
///
/// Same as [`rewrite`].
pub fn rewrite_in(
    func: &Function,
    assignment: &[Option<PhysReg>],
    target: &TargetDesc,
    spill_slots: u32,
    stats: &mut AllocStats,
    scratch: &mut PhaseScratch,
) -> MachFunction {
    let reg_of = |v: VReg| -> PhysReg {
        assignment[v.index()]
            .unwrap_or_else(|| panic!("rewrite: {v} in {} has no register", func.name))
    };

    // Live-across sets per call site for caller-save insertion.
    let cfg = Cfg::compute(func);
    let liveness = Liveness::compute_in(func, &cfg, &mut scratch.liveness);
    let mut across: HashMap<(usize, usize), Vec<PhysReg>> = HashMap::new();
    for b in func.block_ids() {
        liveness.for_each_inst_backward(func, b, |i, inst, live_after| {
            if !inst.is_call() {
                return;
            }
            let def = inst.def();
            let mut regs: Vec<PhysReg> = live_after
                .iter()
                .map(VReg::new)
                .filter(|&v| Some(v) != def)
                .map(reg_of)
                .filter(|&r| target.is_volatile(r))
                .collect();
            regs.sort();
            regs.dedup();
            if !regs.is_empty() {
                across.insert((b.index(), i), regs);
            }
        });
    }

    let mut save_slot: HashMap<PhysReg, u32> = HashMap::new();
    let mut next_slot = spill_slots;
    stats.copies_before += func.num_copies();
    for blk in &func.blocks {
        for inst in &blk.insts {
            if let Inst::Copy { dst, .. } = inst {
                stats.class_mut(func.class_of(*dst)).copies_before += 1;
            }
        }
    }

    let mut blocks: Vec<Vec<MInst>> = scratch.mach_blocks.take(func.num_blocks());
    for b in func.block_ids() {
        let out = &mut blocks[b.index()];
        for (i, inst) in func.block(b).insts.iter().enumerate() {
            match inst {
                Inst::Copy { dst, src } => {
                    let (d, s) = (reg_of(*dst), reg_of(*src));
                    if d == s {
                        stats.moves_eliminated += 1;
                        stats.class_mut(d.class()).moves_eliminated += 1;
                    } else {
                        stats.copies_remaining += 1;
                        stats.class_mut(d.class()).copies_remaining += 1;
                        out.push(MInst::Copy { dst: d, src: s });
                    }
                }
                Inst::Iconst { dst, value } => out.push(MInst::Iconst {
                    dst: reg_of(*dst),
                    value: *value,
                }),
                Inst::Fconst { dst, value } => out.push(MInst::Fconst {
                    dst: reg_of(*dst),
                    value: *value,
                }),
                Inst::Load { dst, base, offset } => out.push(MInst::Load {
                    dst: reg_of(*dst),
                    base: reg_of(*base),
                    offset: *offset,
                }),
                Inst::Load8 { dst, base, offset } => {
                    let d = reg_of(*dst);
                    out.push(MInst::Load8 {
                        dst: d,
                        base: reg_of(*base),
                        offset: *offset,
                    });
                    if !target.is_byte_capable(d) {
                        stats.zero_extensions += 1;
                        out.push(MInst::BinImm {
                            op: pdgc_ir::BinOp::And,
                            dst: d,
                            lhs: d,
                            imm: 0xff,
                        });
                    }
                }
                Inst::Store { src, base, offset } => out.push(MInst::Store {
                    src: reg_of(*src),
                    base: reg_of(*base),
                    offset: *offset,
                }),
                Inst::Bin { op, dst, lhs, rhs } => out.push(MInst::Bin {
                    op: *op,
                    dst: reg_of(*dst),
                    lhs: reg_of(*lhs),
                    rhs: reg_of(*rhs),
                }),
                Inst::BinImm { op, dst, lhs, imm } => out.push(MInst::BinImm {
                    op: *op,
                    dst: reg_of(*dst),
                    lhs: reg_of(*lhs),
                    imm: *imm,
                }),
                Inst::Call { callee, args, ret } => {
                    let saves = across
                        .get(&(b.index(), i))
                        .cloned()
                        .unwrap_or_default();
                    for &r in &saves {
                        let slot = *save_slot.entry(r).or_insert_with(|| {
                            let s = next_slot;
                            next_slot += 1;
                            s
                        });
                        stats.caller_save_insts += 1;
                        out.push(MInst::SpillStore { src: r, slot });
                    }
                    out.push(MInst::Call {
                        callee: *callee,
                        arg_regs: args.iter().map(|&a| reg_of(a)).collect(),
                        ret_reg: ret.map(reg_of),
                    });
                    for &r in &saves {
                        stats.caller_save_insts += 1;
                        out.push(MInst::SpillLoad {
                            dst: r,
                            slot: save_slot[&r],
                        });
                    }
                }
                Inst::Jump { target: t } => out.push(MInst::Jump { target: *t }),
                Inst::Branch {
                    op,
                    lhs,
                    rhs,
                    then_dst,
                    else_dst,
                } => out.push(MInst::Branch {
                    op: *op,
                    lhs: reg_of(*lhs),
                    rhs: reg_of(*rhs),
                    then_dst: *then_dst,
                    else_dst: *else_dst,
                }),
                Inst::BranchImm {
                    op,
                    lhs,
                    imm,
                    then_dst,
                    else_dst,
                } => out.push(MInst::BranchImm {
                    op: *op,
                    lhs: reg_of(*lhs),
                    imm: *imm,
                    then_dst: *then_dst,
                    else_dst: *else_dst,
                }),
                Inst::Ret { .. } => out.push(MInst::Ret),
                Inst::Reload { dst, slot } => {
                    stats.spill_loads += 1;
                    let r = reg_of(*dst);
                    stats.class_mut(r.class()).spill_loads += 1;
                    out.push(MInst::SpillLoad { dst: r, slot: *slot });
                }
                Inst::Spill { src, slot } => {
                    stats.spill_stores += 1;
                    let r = reg_of(*src);
                    stats.class_mut(r.class()).spill_stores += 1;
                    out.push(MInst::SpillStore { src: r, slot: *slot });
                }
            }
        }
        fuse_paired_loads(out, target, stats);
    }
    stats.spill_instructions += stats.spill_loads + stats.spill_stores;

    // Callee-save bookkeeping: every written non-volatile register.
    let mut written: Vec<PhysReg> = Vec::new();
    for blk in &blocks {
        for inst in blk {
            // `defs()` rather than a hand-maintained variant list: a
            // missed writer here (Load8 was one, caught by pdgc-check)
            // silently corrupts a caller's non-volatile register.
            for r in inst.defs() {
                if !target.is_volatile(r) && !written.contains(&r) {
                    written.push(r);
                }
            }
        }
    }
    written.sort();
    stats.nonvolatiles_used += written.len();
    stats.frame_slots += next_slot;
    liveness.recycle(&mut scratch.liveness);

    MachFunction {
        name: func.name.clone(),
        sig: func.sig.clone(),
        blocks,
        num_slots: next_slot,
        used_nonvolatiles: written,
        callees: func.callees.clone(),
    }
}

/// Fuses `Load r1, [b+o]; ...; Load r2, [b+o±stride]` into a `LoadPair`
/// when the destinations satisfy the class's pair rule (ascending or
/// descending offsets — the rule always constrains the lower-addressed
/// word's destination first), the first destination is not the base
/// (which the second load still reads), and the second load sits within
/// the rule's scan window with nothing unsafe in between. Stride,
/// alignment, and window all come from the target's per-class
/// [`pdgc_target::PairRule`].
fn fuse_paired_loads(block: &mut Vec<MInst>, target: &TargetDesc, stats: &mut AllocStats) {
    let mut i = 0;
    while i < block.len() {
        match pair_partner(block, i, target) {
            PairScan::Fuse(j) => {
                let (
                    MInst::Load {
                        dst: d1,
                        base,
                        offset: o1,
                    },
                    MInst::Load {
                        dst: d2, offset: o2, ..
                    },
                ) = (block[i].clone(), block[j].clone())
                else {
                    unreachable!()
                };
                block[i] = MInst::LoadPair {
                    dst1: d1,
                    dst2: d2,
                    base,
                    offset: o1,
                    offset2: o2,
                };
                block.remove(j);
                stats.paired_loads += 1;
                stats.paired_candidates += 1;
            }
            PairScan::Candidate => stats.paired_candidates += 1,
            PairScan::NoPartner => {}
        }
        i += 1;
    }
}

/// Outcome of scanning a load's fusion window.
enum PairScan {
    /// No partner address inside the window (or a barrier cut it short).
    NoPartner,
    /// An address partner exists but register constraints (pair rule,
    /// alignment, intervening uses) block the fusion — a missed
    /// opportunity the scorecard counts against the sequential preference.
    Candidate,
    /// The load at this index fuses.
    Fuse(usize),
}

/// Finds, within the class's scan window past the load at `i`, a later
/// load this one can fuse with, and returns its index.
///
/// Fusing hoists the second load (its memory read and its write of `d2`)
/// up to position `i`, so the scan stops at anything that could observe
/// the difference: memory writes and calls, terminators, redefinitions of
/// the base, and any instruction that reads or writes `d2`. Intervening
/// defs or uses of `d1` are harmless — the first load already executes at
/// position `i` either way.
fn pair_partner(block: &[MInst], i: usize, target: &TargetDesc) -> PairScan {
    let MInst::Load {
        dst: d1,
        base,
        offset: o1,
    } = block[i]
    else {
        return PairScan::NoPartner;
    };
    let Some(&rule) = target.pair_rule(d1.class()) else {
        return PairScan::NoPartner;
    };
    if d1 == base {
        return PairScan::NoPartner;
    }
    // A partner may sit one stride above *or* below: descending-offset
    // pairs (the RPG's minus-stride shape) fuse with the later load
    // supplying the lower-addressed word. The rule constrains the pair as
    // (lower word, higher word), and alignment applies to the lower offset.
    let plus = o1 + rule.stride();
    let minus = o1 - rule.stride();
    let end = block.len().min(i + 1 + rule.window());
    for j in i + 1..end {
        if let MInst::Load {
            dst: d2,
            base: b2,
            offset: o2,
        } = block[j]
        {
            // The first load matching a partner address decides the
            // pair; scanning past it would reorder two reads of the
            // same location.
            if b2 == base && (o2 == plus || o2 == minus) {
                let (lo_dst, lo_off, hi_dst) = if o2 == plus {
                    (d1, o1, d2)
                } else {
                    (d2, o2, d1)
                };
                let ok = d2 != d1
                    && rule.aligned(lo_off)
                    && rule.allows(lo_dst, hi_dst)
                    && block[i + 1..j].iter().all(|x| !x.regs().contains(&d2));
                return if ok { PairScan::Fuse(j) } else { PairScan::Candidate };
            }
        }
        if fusion_barrier(&block[j], base) {
            return PairScan::NoPartner;
        }
    }
    PairScan::NoPartner
}

/// Whether the second load of a pair may be hoisted past `inst`: memory
/// writes, calls, terminators, and redefinitions of the pair's base all
/// pin it in place.
fn fusion_barrier(inst: &MInst, base: PhysReg) -> bool {
    match inst {
        MInst::Store { .. }
        | MInst::SpillStore { .. }
        | MInst::Call { .. }
        | MInst::Jump { .. }
        | MInst::Branch { .. }
        | MInst::BranchImm { .. }
        | MInst::Ret => true,
        _ => inst.defs().contains(&base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    fn assign_all(func: &Function, regs: &[(VReg, PhysReg)]) -> Vec<Option<PhysReg>> {
        let mut a = vec![None; func.num_vregs()];
        for &(v, r) in regs {
            a[v.index()] = Some(r);
        }
        a
    }

    #[test]
    fn same_register_copy_eliminated() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let c = b.copy(p);
        b.ret(Some(c));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High);
        let a = assign_all(&f, &[(p, PhysReg::int(0)), (c, PhysReg::int(0))]);
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(stats.moves_eliminated, 1);
        assert_eq!(stats.copies_remaining, 0);
        assert_eq!(m.num_copies(), 0);
    }

    #[test]
    fn caller_save_inserted_for_volatile_across_call() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        b.call("g", vec![], None);
        let r = b.bin(BinOp::Add, p, p);
        b.ret(Some(r));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High);
        // p in a volatile register crosses the call.
        let a = assign_all(&f, &[(p, PhysReg::int(3)), (r, PhysReg::int(0))]);
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(stats.caller_save_insts, 2);
        let kinds: Vec<&str> = m.blocks[0]
            .iter()
            .map(|i| match i {
                MInst::SpillStore { .. } => "save",
                MInst::Call { .. } => "call",
                MInst::SpillLoad { .. } => "restore",
                MInst::Ret => "ret",
                _ => "op",
            })
            .collect();
        assert_eq!(kinds, vec!["save", "call", "restore", "op", "ret"]);
        assert_eq!(m.num_slots, 1);
    }

    #[test]
    fn no_caller_save_for_nonvolatile() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let q = b.load(p, 0); // written before the call, live across it
        b.call("g", vec![], None);
        let r = b.bin(BinOp::Add, q, q);
        b.ret(Some(r));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High);
        // q in a non-volatile register (index >= 8 under High).
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (q, PhysReg::int(12)),
                (r, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(stats.caller_save_insts, 0);
        // But the non-volatile register is recorded for the prologue.
        assert_eq!(m.used_nonvolatiles, vec![PhysReg::int(12)]);
        assert_eq!(stats.nonvolatiles_used, 1);
    }

    #[test]
    fn byte_load_into_nonvolatile_is_recorded() {
        // Pinned by the symbolic checker (seed 0x0fb762ec852796b7 in
        // tests/check_properties.proptest-regressions): the callee-save
        // scan matched on instruction variants and missed `Load8`, so a
        // byte load into a non-volatile register never reached
        // `used_nonvolatiles` and the prologue would not have saved it.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let q = b.load8(p, 0);
        b.ret(Some(q));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High);
        let a = assign_all(&f, &[(p, PhysReg::int(0)), (q, PhysReg::int(9))]);
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(m.used_nonvolatiles, vec![PhysReg::int(9)]);
    }

    #[test]
    fn paired_load_fused_when_rule_allows() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High); // parity rule
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (x, PhysReg::int(1)),
                (y, PhysReg::int(2)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(stats.paired_loads, 1);
        assert_eq!(m.num_paired_loads(), 1);

        // Same-parity destinations cannot fuse.
        let a2 = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (x, PhysReg::int(1)),
                (y, PhysReg::int(3)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats2 = AllocStats::default();
        let m2 = rewrite(&f, &a2, &t, 0, &mut stats2);
        assert_eq!(stats2.paired_loads, 0);
        assert_eq!(m2.num_paired_loads(), 0);
    }

    #[test]
    fn minus_stride_pair_fuses() {
        // The loads arrive high-offset-first: [p+8] then [p]. The partner
        // sits one stride *below*, so the later load supplies the
        // lower-addressed word (the RPG's minus-stride shape).
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let y = b.load(p, 8);
        let x = b.load(p, 0);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High); // parity rule
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (y, PhysReg::int(2)),
                (x, PhysReg::int(1)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(stats.paired_loads, 1, "descending-offset pair must fuse");
        assert!(matches!(
            m.blocks[0][0],
            MInst::LoadPair {
                offset: 8,
                offset2: 0,
                ..
            }
        ));

        // The rule still constrains the *lower* word's destination first:
        // under a Sequential rule, (lower, higher) = (r1, r2) fuses even
        // though the textual order is r2 then r1...
        let spec = || {
            pdgc_target::ClassSpec::new(16).volatile_prefix(8).pair(
                pdgc_target::PairRule::new(pdgc_target::PairedLoadRule::Sequential, 8),
            )
        };
        let seq = TargetDesc::builder("seq")
            .class(RegClass::Int, spec())
            .class(RegClass::Float, spec())
            .finish()
            .unwrap();
        let mut stats3 = AllocStats::default();
        let m3 = rewrite(&f, &a, &seq, 0, &mut stats3);
        assert_eq!(stats3.paired_loads, 1);
        let _ = m3;

        // ...but (lower, higher) = (r2, r1) breaks Sequential and must not.
        let a2 = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (y, PhysReg::int(1)),
                (x, PhysReg::int(2)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats4 = AllocStats::default();
        let m4 = rewrite(&f, &a2, &seq, 0, &mut stats4);
        assert_eq!(stats4.paired_loads, 0);
        let _ = m4;
    }

    #[test]
    fn minus_stride_alignment_applies_to_the_lower_offset() {
        // Loads at 24 then 16 under an align-16 rule: the lower offset (16)
        // is aligned, so the descending pair fuses — the old ascending-only
        // scan also checked alignment on the first load's offset (24) and
        // could never see this pair.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let y = b.load(p, 24);
        let x = b.load(p, 16);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let spec = || {
            pdgc_target::ClassSpec::new(16).volatile_prefix(8).pair(
                pdgc_target::PairRule::new(pdgc_target::PairedLoadRule::Parity, 8).with_align(16),
            )
        };
        let t = TargetDesc::builder("al")
            .class(RegClass::Int, spec())
            .class(RegClass::Float, spec())
            .finish()
            .unwrap();
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (y, PhysReg::int(2)),
                (x, PhysReg::int(1)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(stats.paired_loads, 1);
        let _ = m;
    }

    #[test]
    fn fusion_blocked_when_dst_is_base() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High);
        // x lands on the base register: second load would read clobbered
        // base under sequential execution, so fusion must not happen.
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(1)),
                (x, PhysReg::int(1)),
                (y, PhysReg::int(2)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(m.num_paired_loads(), 0);
    }

    #[test]
    fn interleaved_loads_fuse_within_the_window() {
        // load x; arith; load y — the old adjacent-only scan missed
        // this shape; the windowed scan fuses it.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        let t1 = b.bin_imm(BinOp::Add, x, 3);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, t1, y);
        b.ret(Some(s));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High);
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (x, PhysReg::int(1)),
                (t1, PhysReg::int(3)),
                (y, PhysReg::int(2)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(stats.paired_loads, 1);
        assert_eq!(m.num_paired_loads(), 1);

        // With a window of 1 (adjacent only) the same code must not fuse.
        use pdgc_target::{ClassSpec, PairRule, PairedLoadRule};
        let spec = || {
            ClassSpec::new(16)
                .volatile_prefix(8)
                .pair(PairRule::new(PairedLoadRule::Parity, 8).with_window(1))
        };
        let adjacent_only = TargetDesc::builder("adjacent")
            .class(RegClass::Int, spec())
            .class(RegClass::Float, spec())
            .finish()
            .unwrap();
        let mut stats2 = AllocStats::default();
        let m2 = rewrite(&f, &a, &adjacent_only, 0, &mut stats2);
        assert_eq!(stats2.paired_loads, 0);
        assert_eq!(m2.num_paired_loads(), 0);
    }

    #[test]
    fn window_fusion_blocked_by_d2_mention_and_barriers() {
        let t = TargetDesc::ia64_like(PressureModel::High);
        // An intervening use of the second destination blocks fusion:
        // hoisting y's write would clobber the value the use reads.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        let t1 = b.bin_imm(BinOp::Add, x, 1);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, t1, y);
        b.ret(Some(s));
        let f = b.finish();
        // t1 lands on the register y will occupy — the intervening inst
        // mentions d2, so the pair must not form.
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (x, PhysReg::int(1)),
                (t1, PhysReg::int(2)), // = d2!
                (y, PhysReg::int(2)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(m.num_paired_loads(), 0);

        // A store between the loads is a memory barrier.
        let mut b = FunctionBuilder::new("g", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        b.store(x, p, 1 << 20);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let a = assign_all(
            &f,
            &[
                (p, PhysReg::int(0)),
                (x, PhysReg::int(1)),
                (y, PhysReg::int(2)),
                (s, PhysReg::int(0)),
            ],
        );
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 0, &mut stats);
        assert_eq!(m.num_paired_loads(), 0);
    }

    #[test]
    fn spill_traffic_translated() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let t1 = b.new_vreg(RegClass::Int);
        b.emit(Inst::Spill { src: p, slot: 0 });
        b.emit(Inst::Reload { dst: t1, slot: 0 });
        b.ret(Some(t1));
        let f = b.finish();
        let t = TargetDesc::ia64_like(PressureModel::High);
        let a = assign_all(&f, &[(p, PhysReg::int(0)), (t1, PhysReg::int(0))]);
        let mut stats = AllocStats::default();
        let m = rewrite(&f, &a, &t, 1, &mut stats);
        assert_eq!(stats.spill_loads, 1);
        assert_eq!(stats.spill_stores, 1);
        assert_eq!(stats.spill_instructions, 2);
        assert_eq!(m.num_spill_insts(), 2);
        assert_eq!(m.num_slots, 1);
    }
}
