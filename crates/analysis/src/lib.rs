//! Control-flow and dataflow analyses over the [`pdgc_ir`] IR.
//!
//! These are the analyses the register allocator of *Preference-Directed
//! Graph Coloring* (PLDI 2002) relies on:
//!
//! * [`Cfg`] — predecessor/successor maps and reverse postorder;
//! * [`Dominators`] — immediate-dominator tree (Cooper–Harvey–Kennedy);
//! * [`Loops`] — natural loops, per-block loop depth, and the paper's
//!   execution-frequency estimate `Freq_Fact = 10^depth`;
//! * [`Liveness`] — iterative backward liveness with per-instruction
//!   queries, plus live-across-call information for volatile/non-volatile
//!   preferences;
//! * [`DefUse`] — definition and use sites per virtual register;
//! * [`Spl`] — series-parallel-loop decomposition with region-composed
//!   liveness/frequency fast paths (bit-identical to the iterative
//!   solvers, with a clean fallback on irreducible or non-SPL shapes);
//! * [`BitSet`] — the dense bit set used throughout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod cfg;
mod defuse;
mod dom;
mod liveness;
mod loops;
mod spl;

pub use bitset::BitSet;
pub use cfg::Cfg;
pub use defuse::{DefUse, InstRef};
pub use dom::Dominators;
pub use liveness::{CallCrossing, Liveness, LivenessScratch};
pub use loops::{Loops, DEFAULT_LOOP_FREQ_FACTOR};
pub use spl::{Spl, SplKind, SplScratch};
