//! Control-flow graph utilities: predecessor/successor maps and orders.

use pdgc_ir::{Block, Function};

/// Precomputed CFG structure for a function.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<Block>>,
    preds: Vec<Vec<Block>>,
    rpo: Vec<Block>,
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes successors, predecessors, and a reverse postorder from the
    /// entry block.
    ///
    /// Blocks unreachable from the entry are excluded from the reverse
    /// postorder (their `rpo_number` is `usize::MAX`) but still appear in
    /// the predecessor/successor maps.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in func.block_ids() {
            for s in func.block(b).successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        // Iterative postorder DFS.
        let mut post: Vec<Block> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(Block, usize)> = vec![(Block::ENTRY, 0)];
        visited[Block::ENTRY.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in post.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo: post,
            rpo_index,
        }
    }

    /// Successors of `b`.
    pub fn succs(&self, b: Block) -> &[Block] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: Block) -> &[Block] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder (reachable blocks only).
    pub fn reverse_postorder(&self) -> &[Block] {
        &self.rpo
    }

    /// The reverse-postorder number of `b`, or `usize::MAX` if unreachable.
    pub fn rpo_number(&self, b: Block) -> usize {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: Block) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Number of blocks in the underlying function.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{CmpOp, FunctionBuilder, RegClass};

    /// entry -> header -> (body -> header | exit)
    fn loop_fn() -> pdgc_ir::Function {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, p, z, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(p));
        b.finish()
    }

    #[test]
    fn preds_and_succs() {
        let f = loop_fn();
        let cfg = Cfg::compute(&f);
        let header = Block::new(1);
        let body = Block::new(2);
        let exit = Block::new(3);
        assert_eq!(cfg.succs(Block::ENTRY), &[header]);
        assert_eq!(cfg.preds(header), &[Block::ENTRY, body]);
        assert_eq!(cfg.succs(header), &[body, exit]);
        assert_eq!(cfg.preds(exit), &[header]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_forward_edges() {
        let f = loop_fn();
        let cfg = Cfg::compute(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], Block::ENTRY);
        assert!(cfg.rpo_number(Block::new(1)) < cfg.rpo_number(Block::new(2)));
        assert!(cfg.rpo_number(Block::new(1)) < cfg.rpo_number(Block::new(3)));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let dead = b.create_block();
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.reverse_postorder().len(), 1);
    }
}
