//! Series-parallel-loop (SPL) decomposition of the CFG, with region-composed
//! liveness and loop-frequency fast paths.
//!
//! Most compiler-generated CFGs are *structured*: they collapse into a tree
//! of series regions (straight-line chains), parallel regions (if-then /
//! if-then-else diamonds), and loop regions (while-shaped and self-loops).
//! On such functions the backward liveness transfer functions — gen/kill
//! closures `f(x) = G ∪ (x \ K)` — compose region by region in one linear
//! bottom-up pass plus one linear top-down pass, instead of iterating a
//! fixpoint over the whole CFG, and loop nesting depth falls out of the
//! region tree without a dominator computation.
//!
//! The contract is strict: the composed results are **bit-identical** to the
//! iterative solver ([`Liveness::compute_in`]) and the dominator-based
//! natural-loop detector ([`Loops::compute_with_factor`]). Anything the
//! grammar cannot express — irreducible cycles, branch arms that never
//! rejoin, multi-exit shapes — makes [`Spl::is_spl`] report `false` and the
//! caller falls back to the iterative solvers. Loop depth additionally
//! requires [`Spl::depth_fast_ok`]: a collapse where a loop region's entry
//! block is itself the entry of an enclosed loop region (two cycles sharing
//! a header) is a single natural loop, not a nest, so only the liveness
//! composition stays valid there.
//!
//! The decomposition also exposes *linear runs* — maximal single-entry
//! single-exit chains of blocks, i.e. maximal series regions of leaves —
//! which the spill-code inserter uses to forward reloaded values across
//! region-interior block boundaries instead of reloading per use.

use crate::liveness::fill_gen_kill;
use crate::{Cfg, Liveness, LivenessScratch, Loops, DEFAULT_LOOP_FREQ_FACTOR};
use pdgc_arena::{NestedPool, VecPool};
use pdgc_ir::{Block, Function};

/// Sentinel for "no node / no run".
const NONE: u32 = u32::MAX;

/// The schema of one node in the SPL region tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplKind {
    /// A leaf region: one basic block.
    Block,
    /// `kids[0]` then `kids[1]`: the first region's single exit edge is the
    /// second region's single entry.
    Series,
    /// `kids[0]` branches to `kids[1]` and to the join; the arm rejoins at
    /// the same join (an if with an empty else).
    IfThen,
    /// `kids[0]` branches to `kids[1]` and `kids[2]`; both arms rejoin at
    /// one join block outside the region.
    IfThenElse,
    /// While-shaped loop: header `kids[0]` branches into body `kids[1]`,
    /// whose single exit latches back to the header.
    Loop,
    /// A region whose exit edge returns to its own entry.
    SelfLoop,
}

/// Resettable pools for [`Spl::compute_in`], so SPL detection on a stream
/// of functions performs no steady-state heap allocation.
#[derive(Debug, Default)]
pub struct SplScratch {
    adj: NestedPool<u32>,
    kinds: VecPool<SplKind>,
    kids: VecPool<[u32; 3]>,
    nums: VecPool<u32>,
    flags: VecPool<bool>,
}

impl SplScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The SPL region tree of a CFG (or the proof that there isn't one).
///
/// Nodes `0..num_blocks` are the basic blocks; composite regions are
/// appended in collapse order, so ascending ids are a bottom-up traversal
/// of the tree and descending ids a top-down one.
#[derive(Clone, Debug)]
pub struct Spl {
    num_blocks: usize,
    kind: Vec<SplKind>,
    kids: Vec<[u32; 3]>,
    /// Entry block (as a raw index) of each node's region.
    entry: Vec<u32>,
    /// Linear-run id per block (`NONE` for unreachable blocks).
    run_id: Vec<u32>,
    /// The unique in-run predecessor block per block (`NONE` at run heads).
    run_pred: Vec<u32>,
    num_runs: u32,
    /// The single surviving node if the CFG fully collapsed.
    root: Option<u32>,
    /// Whether loop depth may be derived from the region tree (see module
    /// docs: false when loop regions share an entry block, or when the
    /// function has unreachable blocks the detector never sees).
    depth_ok: bool,
    loop_regions: u32,
}

/// Mutable state of the collapse; split out so the pattern matcher can
/// borrow it whole.
struct Builder<'a> {
    kind: Vec<SplKind>,
    kids: Vec<[u32; 3]>,
    entry: Vec<u32>,
    /// Whether the node's entry path begins at a loop region.
    entry_is_loop: Vec<bool>,
    /// Whether the region contains the function's entry block.
    contains_entry: Vec<bool>,
    alive: Vec<bool>,
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    work: Vec<u32>,
    on_work: Vec<bool>,
    adj: &'a mut NestedPool<u32>,
    live_nodes: usize,
    loop_regions: u32,
    depth_ok: bool,
}

impl Builder<'_> {
    fn push_work(&mut self, x: u32) {
        if !self.on_work[x as usize] {
            self.on_work[x as usize] = true;
            self.work.push(x);
        }
    }

    /// Replaces `members` (in schema role order, entry first) with one new
    /// region node, rewiring external edges onto it.
    fn collapse(&mut self, k: SplKind, members: &[u32]) {
        let id = self.kind.len() as u32;
        self.kind.push(k);
        let mut kd = [NONE; 3];
        kd[..members.len()].copy_from_slice(members);
        self.kids.push(kd);
        self.entry.push(self.entry[members[0] as usize]);
        let eil = matches!(k, SplKind::Loop | SplKind::SelfLoop)
            || self.entry_is_loop[members[0] as usize];
        self.entry_is_loop.push(eil);
        let has_entry = members
            .iter()
            .any(|&m| self.contains_entry[m as usize]);
        self.contains_entry.push(has_entry);
        self.alive.push(true);
        self.on_work.push(false);
        if matches!(k, SplKind::Loop | SplKind::SelfLoop) {
            self.loop_regions += 1;
            // A rotated loop can absorb the function's entry block as a
            // non-entry member (e.g. `E → H`, `H → {E, exit}` collapses as
            // a while headed at H). The natural-loop header is the entry
            // block there, not the region entry, so the depth fast path
            // must decline; liveness composition remains edge-faithful.
            if has_entry && self.entry[members[0] as usize] != Block::ENTRY.index() as u32 {
                self.depth_ok = false;
            }
        }
        // External edges of the merged set; internal ones (including any
        // back edge onto the entry) disappear into the region.
        let mut ns = self.adj.take_inner();
        let mut np = self.adj.take_inner();
        for &m in members {
            for &s in &self.succs[m as usize] {
                if !members.contains(&s) && !ns.contains(&s) {
                    ns.push(s);
                }
            }
            for &p in &self.preds[m as usize] {
                if !members.contains(&p) && !np.contains(&p) {
                    np.push(p);
                }
            }
            self.alive[m as usize] = false;
        }
        self.live_nodes -= members.len();
        self.live_nodes += 1;
        for &s in &ns {
            let pl = &mut self.preds[s as usize];
            pl.retain(|p| !members.contains(p));
            pl.push(id);
        }
        for &p in &np {
            let sl = &mut self.succs[p as usize];
            sl.retain(|s| !members.contains(s));
            sl.push(id);
        }
        self.succs.push(ns);
        self.preds.push(np);
        self.push_work(id);
    }

    /// Tries every schema with `x` as the pivot (the region entry).
    /// Returns whether a collapse happened.
    fn try_reduce_at(&mut self, x: u32) -> bool {
        let xi = x as usize;
        if !self.alive[xi] {
            return false;
        }
        // Self-loop: an edge from x back onto itself.
        if self.succs[xi].contains(&x) {
            if self.entry_is_loop[xi] {
                self.depth_ok = false;
            }
            self.collapse(SplKind::SelfLoop, &[x]);
            return true;
        }
        // While: x is the header, some successor is a body whose only
        // neighbor (both directions) is x.
        for i in 0..self.succs[xi].len() {
            let b = self.succs[xi][i];
            if b != x && self.succs[b as usize] == [x] && self.preds[b as usize] == [x] {
                if self.entry_is_loop[xi] {
                    // A second cycle through an entry that is already a
                    // loop header is the same natural loop, not a nest.
                    self.depth_ok = false;
                }
                self.collapse(SplKind::Loop, &[x, b]);
                return true;
            }
        }
        // Diamonds: x branches two ways.
        if self.succs[xi].len() == 2 {
            let (s0, s1) = (self.succs[xi][0], self.succs[xi][1]);
            for (t, e) in [(s0, s1), (s1, s0)] {
                if t == x || e == x {
                    continue;
                }
                let ti = t as usize;
                if self.preds[ti] != [x] || self.succs[ti].len() != 1 {
                    continue;
                }
                let j = self.succs[ti][0];
                if j == x || j == t {
                    continue;
                }
                if j == e {
                    // The arm rejoins x's fall-through edge: if-then.
                    self.collapse(SplKind::IfThen, &[x, t]);
                    return true;
                }
                let ei = e as usize;
                if self.preds[ei] == [x] && self.succs[ei] == [j] {
                    self.collapse(SplKind::IfThenElse, &[x, t, e]);
                    return true;
                }
            }
        }
        // Series: x's single exit is its successor's single entry. A
        // return edge b → x is NOT part of the schema (that cycle must
        // collapse as a loop or not at all), so it blocks the merge —
        // collapsing anyway would silently drop the back edge.
        if self.succs[xi].len() == 1 {
            let b = self.succs[xi][0];
            if b != x && self.preds[b as usize] == [x] && !self.succs[b as usize].contains(&x) {
                self.collapse(SplKind::Series, &[x, b]);
                return true;
            }
        }
        false
    }
}

impl Spl {
    /// Detects SPL shape with throwaway scratch. Prefer
    /// [`Spl::compute_in`] on hot paths.
    pub fn compute(cfg: &Cfg) -> Self {
        Self::compute_in(cfg, &mut SplScratch::default())
    }

    /// Runs the collapse over `cfg`'s reachable subgraph, drawing every
    /// buffer from `scratch`.
    pub fn compute_in(cfg: &Cfg, scratch: &mut SplScratch) -> Self {
        let nb = cfg.num_blocks();
        let mut kind = scratch.kinds.take();
        kind.resize(nb, SplKind::Block);
        let mut kids = scratch.kids.take();
        kids.resize(nb, [NONE; 3]);
        let mut entry = scratch.nums.take();
        entry.extend(0..nb as u32);
        let mut entry_is_loop = scratch.flags.take();
        entry_is_loop.resize(nb, false);
        let mut contains_entry = scratch.flags.take();
        contains_entry.resize(nb, false);
        if nb > 0 {
            contains_entry[Block::ENTRY.index()] = true;
        }
        let mut alive = scratch.flags.take();
        alive.resize(nb, false);
        let mut succs = scratch.adj.take(nb);
        let mut preds = scratch.adj.take(nb);

        // Deduplicated adjacency over reachable blocks only: a branch with
        // both targets equal is one edge for region purposes, and edges
        // touching unreachable code never execute. Successors of a
        // reachable block are reachable, so only the source needs a check.
        let mut live_nodes = 0usize;
        let mut all_reachable = true;
        for i in 0..nb {
            let b = Block::new(i);
            if !cfg.is_reachable(b) {
                all_reachable = false;
                continue;
            }
            alive[i] = true;
            live_nodes += 1;
            for &s in cfg.succs(b) {
                let si = s.index() as u32;
                if !succs[i].contains(&si) {
                    succs[i].push(si);
                    preds[s.index()].push(i as u32);
                }
            }
        }

        // Linear runs: maximal chains where each edge is the source's only
        // exit and the sink's only entry. RPO guarantees a chain head is
        // seen before its tail (a chain edge cannot be a back edge unless
        // the head's run is still unassigned, which breaks the chain).
        let mut run_id = scratch.nums.take();
        run_id.resize(nb, NONE);
        let mut run_pred = scratch.nums.take();
        run_pred.resize(nb, NONE);
        let mut num_runs = 0u32;
        for &b in cfg.reverse_postorder() {
            let i = b.index();
            let mut joined = false;
            if preds[i].len() == 1 {
                let p = preds[i][0] as usize;
                if succs[p].len() == 1 && run_id[p] != NONE {
                    run_id[i] = run_id[p];
                    run_pred[i] = p as u32;
                    joined = true;
                }
            }
            if !joined {
                run_id[i] = num_runs;
                num_runs += 1;
            }
        }

        let work = scratch.nums.take();
        let mut on_work = scratch.flags.take();
        on_work.resize(nb, false);
        let mut st = Builder {
            kind,
            kids,
            entry,
            entry_is_loop,
            contains_entry,
            alive,
            succs,
            preds,
            work,
            on_work,
            adj: &mut scratch.adj,
            live_nodes,
            loop_regions: 0,
            depth_ok: true,
        };
        for i in (0..nb).rev() {
            if st.alive[i] {
                st.push_work(i as u32);
            }
        }
        while let Some(x) = st.work.pop() {
            st.on_work[x as usize] = false;
            if !st.alive[x as usize] {
                continue;
            }
            if st.try_reduce_at(x) {
                continue;
            }
            // Every non-pivot role in every schema has the pivot as its
            // unique predecessor, so one hop covers patterns this node
            // participates in without being their entry.
            if st.preds[x as usize].len() == 1 {
                let p = st.preds[x as usize][0];
                if p != x && st.alive[p as usize] {
                    st.try_reduce_at(p);
                }
            }
        }

        let root = if st.live_nodes == 1 {
            let r = st.alive.iter().position(|&a| a).expect("one live node") as u32;
            debug_assert!(st.succs[r as usize].is_empty() && st.preds[r as usize].is_empty());
            Some(r)
        } else {
            None
        };
        let depth_ok = st.depth_ok && all_reachable;
        let loop_regions = st.loop_regions;

        // Dismantle the builder, returning detection-only buffers.
        let Builder {
            kind,
            kids,
            entry,
            entry_is_loop,
            contains_entry,
            alive,
            succs,
            preds,
            work,
            on_work,
            ..
        } = st;
        scratch.adj.put(succs);
        scratch.adj.put(preds);
        scratch.flags.put(entry_is_loop);
        scratch.flags.put(contains_entry);
        scratch.flags.put(alive);
        scratch.flags.put(on_work);
        scratch.nums.put(work);

        Spl {
            num_blocks: nb,
            kind,
            kids,
            entry,
            run_id,
            run_pred,
            num_runs,
            root,
            depth_ok,
            loop_regions,
        }
    }

    /// Returns the node/run buffers to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut SplScratch) {
        scratch.kinds.put(self.kind);
        scratch.kids.put(self.kids);
        scratch.nums.put(self.entry);
        scratch.nums.put(self.run_id);
        scratch.nums.put(self.run_pred);
    }

    /// Whether the CFG fully collapsed into one SPL region tree.
    pub fn is_spl(&self) -> bool {
        self.root.is_some()
    }

    /// Whether loop depth/frequency may be read off the region tree (see
    /// module docs for when this is narrower than [`Spl::is_spl`]).
    pub fn depth_fast_ok(&self) -> bool {
        self.is_spl() && self.depth_ok
    }

    /// Number of composite regions built (0 when nothing collapsed).
    pub fn regions(&self) -> usize {
        self.kind.len() - self.num_blocks
    }

    /// Number of loop regions (while-shaped plus self-loops).
    pub fn loop_regions(&self) -> usize {
        self.loop_regions as usize
    }

    /// Number of linear runs over the reachable blocks.
    pub fn runs(&self) -> usize {
        self.num_runs as usize
    }

    /// The unique in-run predecessor of `b`: the block whose only exit
    /// falls through into `b`, `b`'s only entry. `None` at run heads.
    ///
    /// Only meaningful for spill forwarding when [`Spl::is_spl`] holds —
    /// the region tree is what proves a run executes as straight line.
    pub fn run_pred(&self, b: Block) -> Option<Block> {
        match self.run_pred[b.index()] {
            NONE => None,
            p => Some(Block::new(p as usize)),
        }
    }

    /// Region-composed liveness, bit-identical to
    /// [`Liveness::compute_in`]. `None` unless the CFG is SPL-shaped.
    pub fn liveness_in(
        &self,
        func: &Function,
        cfg: &Cfg,
        scratch: &mut LivenessScratch,
    ) -> Option<Liveness> {
        let root = self.root?;
        let nb = self.num_blocks;
        let nv = func.num_vregs();
        let total = self.kind.len();
        debug_assert_eq!(nb, func.num_blocks());

        // Leaf transfer functions, shared with the iterative solver.
        let mut gen = scratch.take_sets(total, nv);
        let mut kill = scratch.take_sets(total, nv);
        fill_gen_kill(func, &mut gen[..nb], &mut kill[..nb]);

        // Bottom-up: summarize each region as a gen/kill closure
        // f(x) = G ∪ (x \ K). Ascending id order is bottom-up.
        for id in nb..total {
            let [a, b, c] = self.kids[id];
            let (a, b, c) = (a as usize, b as usize, c as usize);
            let (glo, ghi) = gen.split_at_mut(id);
            let (klo, khi) = kill.split_at_mut(id);
            let (g, k) = (&mut ghi[0], &mut khi[0]);
            match self.kind[id] {
                SplKind::Block => unreachable!("leaves are never composite"),
                SplKind::Series => {
                    // f = f_a ∘ f_b (liveness flows backward).
                    g.copy_from(&glo[b]);
                    g.subtract(&klo[a]);
                    g.union_with(&glo[a]);
                    k.copy_from(&klo[a]);
                    k.union_with(&klo[b]);
                }
                SplKind::IfThenElse => {
                    // Parallel arms: G = G_t ∪ G_e, K = K_t ∩ K_e, then in
                    // series behind the branch region a.
                    g.copy_from(&glo[b]);
                    g.union_with(&glo[c]);
                    g.subtract(&klo[a]);
                    g.union_with(&glo[a]);
                    k.copy_from(&klo[b]);
                    k.intersect_with(&klo[c]);
                    k.union_with(&klo[a]);
                }
                SplKind::IfThen => {
                    // The empty else-arm is the identity region (K = ∅),
                    // so the parallel kill set is empty.
                    g.copy_from(&glo[b]);
                    g.subtract(&klo[a]);
                    g.union_with(&glo[a]);
                    k.copy_from(&klo[a]);
                }
                SplKind::Loop => {
                    // Loop closure: one application reaches the fixpoint
                    // for gen/kill closures, so the summary is header ∘
                    // body with the header's kill.
                    g.copy_from(&glo[b]);
                    g.subtract(&klo[a]);
                    g.union_with(&glo[a]);
                    k.copy_from(&klo[a]);
                }
                SplKind::SelfLoop => {
                    g.copy_from(&glo[a]);
                    k.copy_from(&klo[a]);
                }
            }
        }

        // Top-down: distribute each region's live-out to its children.
        // Descending id order visits parents before children; the root's
        // live-out is empty. `out[n]` is the union of live-in over n's
        // actual successor edges (external ones, plus back edges for loop
        // bodies), which for leaves is exactly live_out[b].
        let mut out = scratch.take_sets(total, nv);
        let tmp = &mut scratch.out_tmp;
        tmp.reset(nv);
        for id in (nb..total).rev() {
            let [a, b, _c] = self.kids[id];
            let (a, b, c) = (a as usize, b as usize, _c as usize);
            let (olo, ohi) = out.split_at_mut(id);
            let o = &ohi[0];
            match self.kind[id] {
                SplKind::Block => unreachable!("leaves are never composite"),
                SplKind::Series => {
                    // live-in(b) = f_b(out), then a sees it as its out.
                    tmp.copy_from(o);
                    tmp.subtract(&kill[b]);
                    tmp.union_with(&gen[b]);
                    olo[a].copy_from(tmp);
                    olo[b].copy_from(o);
                }
                SplKind::IfThenElse => {
                    // The branch region's out is the union of both arms'
                    // live-ins; each arm exits straight to the join.
                    tmp.copy_from(o);
                    tmp.subtract(&kill[b]);
                    tmp.union_with(&gen[b]);
                    olo[a].copy_from(tmp);
                    tmp.copy_from(o);
                    tmp.subtract(&kill[c]);
                    tmp.union_with(&gen[c]);
                    olo[a].union_with(tmp);
                    olo[b].copy_from(o);
                    olo[c].copy_from(o);
                }
                SplKind::IfThen => {
                    // The branch also exits straight to the join (the
                    // empty arm), so its out includes the join's live-in.
                    tmp.copy_from(o);
                    tmp.subtract(&kill[b]);
                    tmp.union_with(&gen[b]);
                    tmp.union_with(o);
                    olo[a].copy_from(tmp);
                    olo[b].copy_from(o);
                }
                SplKind::Loop => {
                    // Body's out is the header's live-in (the latch);
                    // header's out is body's live-in plus the exit edge.
                    tmp.copy_from(o);
                    tmp.subtract(&kill[id]);
                    tmp.union_with(&gen[id]);
                    olo[b].copy_from(tmp);
                    tmp.subtract(&kill[b]);
                    tmp.union_with(&gen[b]);
                    tmp.union_with(o);
                    olo[a].copy_from(tmp);
                }
                SplKind::SelfLoop => {
                    // The region's exit loops back to its own entry: out
                    // is its own live-in plus the external exit.
                    tmp.copy_from(o);
                    tmp.subtract(&kill[a]);
                    tmp.union_with(&gen[a]);
                    tmp.union_with(o);
                    olo[a].copy_from(tmp);
                }
            }
        }
        debug_assert!(out[root as usize].is_empty());

        let mut live_in = scratch.take_sets(nb, nv);
        let mut live_out = scratch.take_sets(nb, nv);
        for i in 0..nb {
            // The iterative solver leaves unreachable blocks' sets empty;
            // so does the composition (they are not in the region tree).
            if !cfg.is_reachable(Block::new(i)) {
                continue;
            }
            live_out[i].copy_from(&out[i]);
            live_in[i].copy_from(&out[i]);
            live_in[i].subtract(&kill[i]);
            live_in[i].union_with(&gen[i]);
        }
        scratch.put_sets(gen);
        scratch.put_sets(kill);
        scratch.put_sets(out);
        Some(Liveness::from_parts(live_in, live_out, nv))
    }

    /// Region-derived natural loops with the paper's default frequency
    /// factor; bit-identical to [`Loops::compute`]. `None` unless
    /// [`Spl::depth_fast_ok`].
    pub fn loops(&self) -> Option<Loops> {
        self.loops_with_factor(DEFAULT_LOOP_FREQ_FACTOR)
    }

    /// As [`Spl::loops`] with a custom per-level factor.
    pub fn loops_with_factor(&self, freq_factor: u64) -> Option<Loops> {
        if !self.depth_fast_ok() {
            return None;
        }
        let nb = self.num_blocks;
        let mut depth = vec![0u32; nb];
        let mut headers = Vec::new();
        let mut stack = Vec::new();
        for id in nb..self.kind.len() {
            if !matches!(self.kind[id], SplKind::Loop | SplKind::SelfLoop) {
                continue;
            }
            // Each loop region is one natural loop: its header is the
            // region's entry block and its body is every enclosed block.
            headers.push(Block::new(self.entry[id] as usize));
            stack.push(id as u32);
            while let Some(n) = stack.pop() {
                let n = n as usize;
                if n < nb {
                    depth[n] += 1;
                } else {
                    for &kid in &self.kids[n] {
                        if kid != NONE {
                            stack.push(kid);
                        }
                    }
                }
            }
        }
        headers.sort_unstable_by_key(|h| h.index());
        Some(Loops::from_parts(depth, headers, freq_factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dominators;
    use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};

    fn assert_matches_iterative(f: &Function) {
        let cfg = Cfg::compute(f);
        let spl = Spl::compute(&cfg);
        assert!(spl.is_spl(), "expected SPL shape for {}", f.name);
        let fast = spl
            .liveness_in(f, &cfg, &mut LivenessScratch::new())
            .expect("liveness fast path");
        let slow = Liveness::compute(f, &cfg);
        for b in f.block_ids() {
            assert_eq!(fast.live_in(b), slow.live_in(b), "live_in({b:?})");
            assert_eq!(fast.live_out(b), slow.live_out(b), "live_out({b:?})");
        }
        if let Some(fast_loops) = spl.loops() {
            let dom = Dominators::compute(&cfg);
            let slow_loops = Loops::compute(&cfg, &dom);
            assert_eq!(fast_loops.headers(), slow_loops.headers());
            for b in f.block_ids() {
                assert_eq!(fast_loops.depth(b), slow_loops.depth(b), "depth({b:?})");
            }
        }
    }

    /// entry → diamond → while loop → exit, with values flowing across.
    fn structured_function() -> Function {
        let mut b = FunctionBuilder::new("s", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let z = b.iconst(0);
        b.branch(CmpOp::Gt, p, z, t, e);
        b.switch_to(t);
        let x1 = b.bin_imm(BinOp::Add, p, 1);
        b.store(x1, p, 0);
        b.jump(j);
        b.switch_to(e);
        let x2 = b.bin_imm(BinOp::Mul, p, 2);
        b.store(x2, p, 8);
        b.jump(j);
        b.switch_to(j);
        b.jump(h);
        b.switch_to(h);
        b.branch(CmpOp::Ne, p, z, body, exit);
        b.switch_to(body);
        let y = b.bin_imm(BinOp::Sub, p, 1);
        b.store(y, p, 16);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(p));
        b.finish()
    }

    #[test]
    fn structured_function_collapses_and_matches() {
        let f = structured_function();
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        assert!(spl.is_spl());
        assert!(spl.depth_fast_ok());
        assert!(spl.loop_regions() >= 1);
        assert!(spl.regions() >= 4);
        assert_matches_iterative(&f);
    }

    #[test]
    fn two_latch_continue_loop_is_spl_and_matches() {
        let mut b = FunctionBuilder::new("c", vec![RegClass::Int], None);
        let p = b.param(0);
        let h = b.create_block();
        let body1 = b.create_block();
        let body2 = b.create_block();
        let exit = b.create_block();
        let z = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        b.branch(CmpOp::Ne, p, z, body1, exit);
        b.switch_to(body1);
        b.branch(CmpOp::Gt, p, z, h, body2);
        b.switch_to(body2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        assert!(spl.is_spl(), "continue-shaped loops are SPL");
        let loops = spl.loops().expect("depth fast path");
        assert_eq!(loops.depth(h), 1, "two latches, one loop");
        assert_eq!(loops.headers(), &[h]);
        assert_matches_iterative(&f);
    }

    #[test]
    fn self_loop_block_is_spl() {
        let mut b = FunctionBuilder::new("l", vec![RegClass::Int], None);
        let p = b.param(0);
        let h = b.create_block();
        let exit = b.create_block();
        let z = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        b.branch(CmpOp::Ne, p, z, h, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        assert!(spl.is_spl());
        assert_eq!(spl.loop_regions(), 1);
        let loops = spl.loops().expect("depth fast path");
        assert_eq!(loops.depth(h), 1);
        assert_matches_iterative(&f);
    }

    #[test]
    fn irreducible_cfg_falls_back() {
        // entry branches into a two-block cycle with two entry points:
        // no natural loop, no SPL region tree.
        let mut bld = FunctionBuilder::new("irr", vec![RegClass::Int], None);
        let p = bld.param(0);
        let a = bld.create_block();
        let b = bld.create_block();
        let exit = bld.create_block();
        let z = bld.iconst(0);
        bld.branch(CmpOp::Gt, p, z, a, b);
        bld.switch_to(a);
        bld.jump(b);
        bld.switch_to(b);
        bld.branch(CmpOp::Ne, p, z, a, exit);
        bld.switch_to(exit);
        bld.ret(None);
        let f = bld.finish();
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        assert!(!spl.is_spl(), "irreducible cycles must not collapse");
        assert!(spl
            .liveness_in(&f, &cfg, &mut LivenessScratch::new())
            .is_none());
        assert!(spl.loops().is_none());
    }

    #[test]
    fn multi_exit_falls_back() {
        // A branch whose arms both return: no rejoin, not SPL.
        let mut bld = FunctionBuilder::new("mx", vec![RegClass::Int], Some(RegClass::Int));
        let p = bld.param(0);
        let t = bld.create_block();
        let e = bld.create_block();
        let z = bld.iconst(0);
        bld.branch(CmpOp::Gt, p, z, t, e);
        bld.switch_to(t);
        bld.ret(Some(p));
        bld.switch_to(e);
        bld.ret(Some(z));
        let f = bld.finish();
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        assert!(!spl.is_spl());
    }

    #[test]
    fn sibling_cycles_sharing_a_header_guard_the_depth_path() {
        // h alternates into two one-block cycles: h→b1→h and h→b2→h.
        // That is ONE natural loop; the collapse sees two nested loop
        // regions sharing entry h, so the depth fast path must decline
        // while liveness composition stays exact.
        let mut bld = FunctionBuilder::new("sib", vec![RegClass::Int], None);
        let p = bld.param(0);
        let h = bld.create_block();
        let b1 = bld.create_block();
        let b2 = bld.create_block();
        let exit = bld.create_block();
        let z = bld.iconst(0);
        bld.jump(h);
        bld.switch_to(h);
        bld.branch(CmpOp::Gt, p, z, b1, b2);
        bld.switch_to(b1);
        bld.jump(h);
        bld.switch_to(b2);
        bld.branch(CmpOp::Ne, p, z, h, exit);
        bld.switch_to(exit);
        bld.ret(None);
        let f = bld.finish();
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        // Whether this shape collapses (with the depth guard tripped) or
        // refuses to collapse at all, the frequency fast path must stay
        // off — the merged-header natural loop is depth 1 everywhere.
        assert!(!spl.depth_fast_ok(), "shared-header cycles are one loop");
        assert!(spl.loops().is_none());
        if spl.is_spl() {
            let fast = spl
                .liveness_in(&f, &cfg, &mut LivenessScratch::new())
                .expect("liveness composition stays valid");
            let slow = Liveness::compute(&f, &cfg);
            for b in f.block_ids() {
                assert_eq!(fast.live_in(b), slow.live_in(b));
                assert_eq!(fast.live_out(b), slow.live_out(b));
            }
        }
    }

    #[test]
    fn linear_runs_chain_straight_line_blocks() {
        let mut b = FunctionBuilder::new("runs", vec![RegClass::Int], None);
        let p = b.param(0);
        let m1 = b.create_block();
        let m2 = b.create_block();
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        let z = b.iconst(0);
        b.jump(m1);
        b.switch_to(m1);
        b.jump(m2);
        b.switch_to(m2);
        b.branch(CmpOp::Gt, p, z, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        assert!(spl.is_spl());
        // entry→m1→m2 is one run; t, e, j each start their own.
        assert_eq!(spl.run_pred(m1), Some(Block::ENTRY));
        assert_eq!(spl.run_pred(m2), Some(m1));
        assert_eq!(spl.run_pred(t), None, "branch target starts a run");
        assert_eq!(spl.run_pred(j), None, "join starts a run");
        assert_eq!(spl.runs(), 4);
    }

    #[test]
    fn scratch_reuse_is_identical_and_pooled() {
        let f = structured_function();
        let cfg = Cfg::compute(&f);
        let mut scratch = SplScratch::new();
        let mut lscratch = LivenessScratch::new();
        let fresh = Spl::compute(&cfg);
        let fresh_lv = fresh.liveness_in(&f, &cfg, &mut LivenessScratch::new());
        for _ in 0..3 {
            let spl = Spl::compute_in(&cfg, &mut scratch);
            assert_eq!(spl.is_spl(), fresh.is_spl());
            assert_eq!(spl.regions(), fresh.regions());
            let lv = spl.liveness_in(&f, &cfg, &mut lscratch).unwrap();
            for blk in f.block_ids() {
                assert_eq!(lv.live_in(blk), fresh_lv.as_ref().unwrap().live_in(blk));
            }
            lv.recycle(&mut lscratch);
            spl.recycle(&mut scratch);
        }
    }
}
