//! Dominator-tree computation (Cooper–Harvey–Kennedy).

use crate::Cfg;
use pdgc_ir::Block;

/// The immediate-dominator tree of a CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself.
    /// `None` for unreachable blocks.
    idom: Vec<Option<Block>>,
}

impl Dominators {
    /// Computes dominators with the Cooper–Harvey–Kennedy iterative
    /// algorithm over reverse postorder.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let mut idom: Vec<Option<Block>> = vec![None; n];
        idom[Block::ENTRY.index()] = Some(Block::ENTRY);
        let rpo = cfg.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<Block> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cfg, p, cur),
                    });
                }
                if new_idom != idom[b.index()] {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: Block) -> Option<Block> {
        let d = self.idom[b.index()]?;
        if d == b {
            None
        } else {
            Some(d)
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

fn intersect(idom: &[Option<Block>], cfg: &Cfg, mut a: Block, mut b: Block) -> Block {
    while a != b {
        while cfg.rpo_number(a) > cfg.rpo_number(b) {
            a = idom[a.index()].expect("processed block has idom");
        }
        while cfg.rpo_number(b) > cfg.rpo_number(a) {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{CmpOp, FunctionBuilder, RegClass};

    /// Diamond: 0 -> 1, 2; 1 -> 3; 2 -> 3.
    fn diamond() -> pdgc_ir::Function {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let l = b.create_block();
        let r = b.create_block();
        let j = b.create_block();
        let z = b.iconst(0);
        b.branch(CmpOp::Eq, p, z, l, r);
        b.switch_to(l);
        b.jump(j);
        b.switch_to(r);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(Block::ENTRY), None);
        assert_eq!(dom.idom(Block::new(1)), Some(Block::ENTRY));
        assert_eq!(dom.idom(Block::new(2)), Some(Block::ENTRY));
        // Join is dominated by entry, not by either arm.
        assert_eq!(dom.idom(Block::new(3)), Some(Block::ENTRY));
        assert!(dom.dominates(Block::ENTRY, Block::new(3)));
        assert!(!dom.dominates(Block::new(1), Block::new(3)));
        assert!(dom.dominates(Block::new(3), Block::new(3)));
    }

    #[test]
    fn chain_idoms() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let b1 = b.create_block();
        let b2 = b.create_block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(b1), Some(Block::ENTRY));
        assert_eq!(dom.idom(b2), Some(b1));
        assert!(dom.dominates(b1, b2));
        assert!(!dom.dominates(b2, b1));
    }
}
