//! Natural-loop detection and execution-frequency estimation.
//!
//! The paper's Appendix weights every cost by `Freq_Fact(I)`, "obtained by
//! loop analysis": instructions outside loops get weight 1, and each level
//! of loop nesting multiplies the weight by 10 (the Figure 7 example uses
//! exactly `Freq_Fact = 10` inside the single loop). [`Loops`] reproduces
//! that estimate from natural-loop structure.

use crate::{Cfg, Dominators};
use pdgc_ir::Block;

/// The per-nesting-level frequency multiplier from the paper's Appendix.
pub const DEFAULT_LOOP_FREQ_FACTOR: u64 = 10;

/// Natural loops and per-block loop depth / frequency estimates.
#[derive(Clone, Debug)]
pub struct Loops {
    depth: Vec<u32>,
    headers: Vec<Block>,
    freq_factor: u64,
}

impl Loops {
    /// Detects natural loops (back edges `t -> h` where `h` dominates `t`)
    /// and computes each block's nesting depth, using the paper's default
    /// frequency factor of 10 per level.
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> Self {
        Self::compute_with_factor(cfg, dom, DEFAULT_LOOP_FREQ_FACTOR)
    }

    /// As [`compute`](Self::compute) with a custom per-level factor.
    pub fn compute_with_factor(cfg: &Cfg, dom: &Dominators, freq_factor: u64) -> Self {
        let n = cfg.num_blocks();
        let mut depth = vec![0u32; n];
        let mut headers = Vec::new();
        for b in (0..n).map(Block::new) {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    // Back edge b -> s: the natural loop is s plus all
                    // blocks that reach b without passing through s.
                    if !headers.contains(&s) {
                        headers.push(s);
                    }
                    let mut in_loop = vec![false; n];
                    in_loop[s.index()] = true;
                    let mut stack = Vec::new();
                    if !in_loop[b.index()] {
                        in_loop[b.index()] = true;
                        stack.push(b);
                    }
                    while let Some(x) = stack.pop() {
                        for &p in cfg.preds(x) {
                            if !in_loop[p.index()] {
                                in_loop[p.index()] = true;
                                stack.push(p);
                            }
                        }
                    }
                    for (i, &inl) in in_loop.iter().enumerate() {
                        if inl {
                            depth[i] += 1;
                        }
                    }
                }
            }
        }
        Loops {
            depth,
            headers,
            freq_factor,
        }
    }

    /// The loop-nesting depth of `b` (0 = not in a loop).
    ///
    /// A block inside several distinct natural loops counts each of them,
    /// so irreducible or shared-header regions may report conservative
    /// (higher) depths.
    pub fn depth(&self, b: Block) -> u32 {
        self.depth[b.index()]
    }

    /// The paper's `Freq_Fact` for instructions in `b`: `factor^depth`,
    /// saturating. Depth is capped at 9 levels to keep weights finite.
    pub fn freq(&self, b: Block) -> u64 {
        let d = self.depth[b.index()].min(9);
        self.freq_factor.saturating_pow(d)
    }

    /// The detected loop headers (one entry per natural loop header).
    pub fn headers(&self) -> &[Block] {
        &self.headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{CmpOp, FunctionBuilder, RegClass};

    /// entry -> h1 -> h2 -> body -> h2 | h1-exit ...
    /// Builds a doubly nested loop.
    fn nested_loops() -> pdgc_ir::Function {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let h1 = b.create_block();
        let h2 = b.create_block();
        let body = b.create_block();
        let latch1 = b.create_block();
        let exit = b.create_block();
        let z = b.iconst(0);
        b.jump(h1);
        b.switch_to(h1);
        b.branch(CmpOp::Ne, p, z, h2, exit);
        b.switch_to(h2);
        b.branch(CmpOp::Ne, p, z, body, latch1);
        b.switch_to(body);
        b.jump(h2); // back edge of inner loop
        b.switch_to(latch1);
        b.jump(h1); // back edge of outer loop
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn nesting_depths() {
        let f = nested_loops();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        assert_eq!(loops.depth(Block::ENTRY), 0);
        assert_eq!(loops.depth(Block::new(1)), 1); // h1
        assert_eq!(loops.depth(Block::new(2)), 2); // h2
        assert_eq!(loops.depth(Block::new(3)), 2); // body
        assert_eq!(loops.depth(Block::new(4)), 1); // latch1
        assert_eq!(loops.depth(Block::new(5)), 0); // exit
        assert_eq!(loops.freq(Block::new(3)), 100);
        assert_eq!(loops.freq(Block::new(5)), 1);
        assert_eq!(loops.headers().len(), 2);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        assert_eq!(loops.depth(Block::ENTRY), 0);
        assert_eq!(loops.freq(Block::ENTRY), 1);
        assert!(loops.headers().is_empty());
    }

    #[test]
    fn custom_factor() {
        let f = nested_loops();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute_with_factor(&cfg, &dom, 2);
        assert_eq!(loops.freq(Block::new(3)), 4);
    }

    #[test]
    fn deep_nesting_saturates_not_panics() {
        // Manually fake a very deep nest by chaining self-loops is hard;
        // instead check the cap arithmetic directly.
        let f = nested_loops();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let mut loops = Loops::compute(&cfg, &dom);
        loops.depth[1] = 40;
        assert_eq!(loops.freq(Block::new(1)), 10u64.pow(9));
    }
}
