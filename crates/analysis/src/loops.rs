//! Natural-loop detection and execution-frequency estimation.
//!
//! The paper's Appendix weights every cost by `Freq_Fact(I)`, "obtained by
//! loop analysis": instructions outside loops get weight 1, and each level
//! of loop nesting multiplies the weight by 10 (the Figure 7 example uses
//! exactly `Freq_Fact = 10` inside the single loop). [`Loops`] reproduces
//! that estimate from natural-loop structure.

use crate::{Cfg, Dominators};
use pdgc_ir::Block;

/// The per-nesting-level frequency multiplier from the paper's Appendix.
pub const DEFAULT_LOOP_FREQ_FACTOR: u64 = 10;

/// Natural loops and per-block loop depth / frequency estimates.
#[derive(Clone, Debug)]
pub struct Loops {
    depth: Vec<u32>,
    headers: Vec<Block>,
    freq_factor: u64,
}

impl Loops {
    /// Detects natural loops (back edges `t -> h` where `h` dominates `t`)
    /// and computes each block's nesting depth, using the paper's default
    /// frequency factor of 10 per level.
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> Self {
        Self::compute_with_factor(cfg, dom, DEFAULT_LOOP_FREQ_FACTOR)
    }

    /// As [`compute`](Self::compute) with a custom per-level factor.
    pub fn compute_with_factor(cfg: &Cfg, dom: &Dominators, freq_factor: u64) -> Self {
        let n = cfg.num_blocks();
        let mut depth = vec![0u32; n];
        // All back edges t -> h (h dominates t), grouped by header below.
        // A header with several latches (e.g. a loop with a `continue`) is
        // ONE natural loop — the union of the per-latch bodies — not a
        // nest, so depth increments once per header, not once per edge.
        let mut is_header = vec![false; n];
        let mut back_edges: Vec<(Block, Block)> = Vec::new();
        for b in (0..n).map(Block::new) {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    is_header[s.index()] = true;
                    back_edges.push((s, b));
                }
            }
        }
        back_edges.sort_unstable_by_key(|&(h, t)| (h.index(), t.index()));
        let headers: Vec<Block> = (0..n)
            .map(Block::new)
            .filter(|h| is_header[h.index()])
            .collect();
        let mut in_loop = vec![false; n];
        let mut stack = Vec::new();
        let mut edge = 0;
        for &h in &headers {
            // The natural loop of h: h plus every block that reaches one
            // of h's latches without passing through h.
            in_loop.iter_mut().for_each(|x| *x = false);
            in_loop[h.index()] = true;
            while edge < back_edges.len() && back_edges[edge].0 == h {
                let t = back_edges[edge].1;
                if !in_loop[t.index()] {
                    in_loop[t.index()] = true;
                    stack.push(t);
                }
                edge += 1;
            }
            while let Some(x) = stack.pop() {
                for &p in cfg.preds(x) {
                    if !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            for (i, &inl) in in_loop.iter().enumerate() {
                if inl {
                    depth[i] += 1;
                }
            }
        }
        Loops {
            depth,
            headers,
            freq_factor,
        }
    }

    /// Builds a `Loops` from precomputed per-block depths and a sorted
    /// header list. Used by the SPL region fast path, which derives the
    /// same natural-loop structure from the region tree without running
    /// the dominator-based detector.
    pub(crate) fn from_parts(depth: Vec<u32>, headers: Vec<Block>, freq_factor: u64) -> Self {
        debug_assert!(headers.windows(2).all(|w| w[0].index() < w[1].index()));
        Loops {
            depth,
            headers,
            freq_factor,
        }
    }

    /// The loop-nesting depth of `b` (0 = not in a loop).
    ///
    /// A block inside several distinct natural loops (distinct headers)
    /// counts each of them, so irreducible regions may report
    /// conservative (higher) depths. Back edges sharing a header are one
    /// loop and count once.
    pub fn depth(&self, b: Block) -> u32 {
        self.depth[b.index()]
    }

    /// The paper's `Freq_Fact` for instructions in `b`: `factor^depth`,
    /// saturating. Depth is capped at 9 levels to keep weights finite.
    pub fn freq(&self, b: Block) -> u64 {
        let d = self.depth[b.index()].min(9);
        self.freq_factor.saturating_pow(d)
    }

    /// The detected loop headers (one entry per natural loop header).
    pub fn headers(&self) -> &[Block] {
        &self.headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{CmpOp, FunctionBuilder, RegClass};

    /// entry -> h1 -> h2 -> body -> h2 | h1-exit ...
    /// Builds a doubly nested loop.
    fn nested_loops() -> pdgc_ir::Function {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let h1 = b.create_block();
        let h2 = b.create_block();
        let body = b.create_block();
        let latch1 = b.create_block();
        let exit = b.create_block();
        let z = b.iconst(0);
        b.jump(h1);
        b.switch_to(h1);
        b.branch(CmpOp::Ne, p, z, h2, exit);
        b.switch_to(h2);
        b.branch(CmpOp::Ne, p, z, body, latch1);
        b.switch_to(body);
        b.jump(h2); // back edge of inner loop
        b.switch_to(latch1);
        b.jump(h1); // back edge of outer loop
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn nesting_depths() {
        let f = nested_loops();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        assert_eq!(loops.depth(Block::ENTRY), 0);
        assert_eq!(loops.depth(Block::new(1)), 1); // h1
        assert_eq!(loops.depth(Block::new(2)), 2); // h2
        assert_eq!(loops.depth(Block::new(3)), 2); // body
        assert_eq!(loops.depth(Block::new(4)), 1); // latch1
        assert_eq!(loops.depth(Block::new(5)), 0); // exit
        assert_eq!(loops.freq(Block::new(3)), 100);
        assert_eq!(loops.freq(Block::new(5)), 1);
        assert_eq!(loops.headers().len(), 2);
    }

    /// A `while` loop whose body `continue`s from one arm: two latches
    /// (body1 -> h and body2 -> h) share the header `h`. This is ONE loop;
    /// the old per-back-edge counting reported depth 2 / freq 100 for the
    /// header and the continuing arm as if they were nested.
    #[test]
    fn two_latch_continue_loop_counts_once() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let h = b.create_block();
        let body1 = b.create_block();
        let body2 = b.create_block();
        let exit = b.create_block();
        let z = b.iconst(0);
        b.jump(h);
        b.switch_to(h);
        b.branch(CmpOp::Ne, p, z, body1, exit);
        b.switch_to(body1);
        b.branch(CmpOp::Gt, p, z, h, body2); // `continue` latch
        b.switch_to(body2);
        b.jump(h); // normal latch
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        assert_eq!(loops.headers(), &[h], "one loop, one header");
        assert_eq!(loops.depth(h), 1);
        assert_eq!(loops.depth(body1), 1);
        assert_eq!(loops.depth(body2), 1);
        assert_eq!(loops.depth(exit), 0);
        assert_eq!(loops.freq(h), 10, "two latches are not two nested loops");
        assert_eq!(loops.freq(body1), 10);
    }

    #[test]
    fn headers_are_sorted_and_deduped() {
        let f = nested_loops();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        assert_eq!(loops.headers(), &[Block::new(1), Block::new(2)]);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        assert_eq!(loops.depth(Block::ENTRY), 0);
        assert_eq!(loops.freq(Block::ENTRY), 1);
        assert!(loops.headers().is_empty());
    }

    #[test]
    fn custom_factor() {
        let f = nested_loops();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute_with_factor(&cfg, &dom, 2);
        assert_eq!(loops.freq(Block::new(3)), 4);
    }

    #[test]
    fn deep_nesting_saturates_not_panics() {
        // Manually fake a very deep nest by chaining self-loops is hard;
        // instead check the cap arithmetic directly.
        let f = nested_loops();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let mut loops = Loops::compute(&cfg, &dom);
        loops.depth[1] = 40;
        assert_eq!(loops.freq(Block::new(1)), 10u64.pow(9));
    }
}
