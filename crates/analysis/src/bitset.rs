//! A dense, fixed-capacity bit set.

/// A dense bit set over `0..capacity`.
///
/// Used for liveness sets and interference rows, where indices are dense
/// virtual-register or node numbers.
///
/// # Example
///
/// ```
/// use pdgc_analysis::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bitset index {i} out of {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Empties the set and re-sizes it to `capacity`, reusing the word
    /// allocation. Equivalent to `*self = BitSet::new(capacity)` but
    /// without releasing storage — the recycling path scratch pools rely
    /// on.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// Makes `self` an exact copy of `other`, reusing `self`'s word
    /// allocation (unlike the derived `clone_from`, which re-allocates).
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.capacity = other.capacity;
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets `self = self ∪ other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Sets `self = self ∖ other`.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Sets `self = self ∩ other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the largest element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over a [`BitSet`]'s elements; see [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(5);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(5));
    }

    #[test]
    fn subtract_and_intersect() {
        let mut a: BitSet = [1usize, 2, 3].into_iter().collect();
        let b: BitSet = [2usize, 3].into_iter().collect();
        let mut a2 = a.clone();
        // Capacities differ (4 vs 4) — both max out at 3, equal.
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
        a2.intersect_with(&b);
        assert_eq!(a2.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn iter_cross_word_boundary() {
        let mut s = BitSet::new(200);
        for i in [0, 63, 64, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(9);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut s = BitSet::new(200);
        s.insert(199);
        let cap = s.words.capacity();
        s.reset(100);
        assert_eq!(s.capacity(), 100);
        assert!(s.is_empty());
        assert!(!s.contains(199));
        assert_eq!(s.words.capacity(), cap, "reset must retain storage");
        s.insert(99);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src: BitSet = [3usize, 64, 120].into_iter().collect();
        let mut dst = BitSet::new(1000);
        dst.insert(999);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.capacity(), src.capacity());
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }
}
