//! Definition and use sites per virtual register.

use crate::LivenessScratch;
use pdgc_ir::{Block, Function, VReg};

/// A reference to one instruction position within a function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstRef {
    /// The containing block.
    pub block: Block,
    /// Index of the instruction within the block body.
    pub index: usize,
}

/// Per-register definition and use sites.
///
/// The paper's cost model (Appendix) sums costs over `Using(V)` and
/// `Defining(V)` — exactly the site lists recorded here.
#[derive(Clone, Debug)]
pub struct DefUse {
    defs: Vec<Vec<InstRef>>,
    uses: Vec<Vec<InstRef>>,
}

impl DefUse {
    /// Scans the function (φs must be lowered) and records every def and
    /// use site of every virtual register.
    ///
    /// # Panics
    ///
    /// Panics if the function still contains φ-functions.
    pub fn compute(func: &Function) -> Self {
        Self::compute_in(func, &mut LivenessScratch::default())
    }

    /// As [`DefUse::compute`], drawing the per-register site lists from
    /// pooled scratch (one vector per vreg per direction — the dominant
    /// per-round allocation cost when unpooled). Return them with
    /// [`DefUse::recycle`] when done.
    ///
    /// # Panics
    ///
    /// Same as [`DefUse::compute`].
    pub fn compute_in(func: &Function, scratch: &mut LivenessScratch) -> Self {
        let n = func.num_vregs();
        let mut defs = scratch.sites.take(n);
        let mut uses = scratch.sites.take(n);
        for b in func.block_ids() {
            assert!(
                func.block(b).phis.is_empty(),
                "DefUse requires lowered phis"
            );
            for (i, inst) in func.block(b).insts.iter().enumerate() {
                let r = InstRef { block: b, index: i };
                if let Some(d) = inst.def() {
                    defs[d.index()].push(r);
                }
                inst.visit_uses(|u| uses[u.index()].push(r));
            }
        }
        DefUse { defs, uses }
    }

    /// Definition sites of `v` (empty for parameters).
    pub fn defs(&self, v: VReg) -> &[InstRef] {
        &self.defs[v.index()]
    }

    /// Use sites of `v`. An instruction using `v` twice appears twice.
    pub fn uses(&self, v: VReg) -> &[InstRef] {
        &self.uses[v.index()]
    }

    /// Whether `v` is never defined or used.
    pub fn is_unused(&self, v: VReg) -> bool {
        self.defs[v.index()].is_empty() && self.uses[v.index()].is_empty()
    }

    /// Returns the site-list storage to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut LivenessScratch) {
        scratch.sites.put(self.defs);
        scratch.sites.put(self.uses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};

    #[test]
    fn records_defs_and_uses() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, p);
        b.ret(Some(x));
        let f = b.finish();
        let du = DefUse::compute(&f);
        assert!(du.defs(p).is_empty());
        assert_eq!(du.uses(p).len(), 2); // used twice by the add
        assert_eq!(du.defs(x).len(), 1);
        assert_eq!(du.uses(x).len(), 1);
        assert_eq!(du.defs(x)[0].index, 0);
        assert_eq!(du.uses(x)[0].index, 1);
    }

    #[test]
    fn unused_register() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let mut f = b.finish();
        let v = f.new_vreg(RegClass::Int);
        let du = DefUse::compute(&f);
        assert!(du.is_unused(v));
    }
}
