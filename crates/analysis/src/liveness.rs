//! Iterative backward liveness analysis.

use crate::{BitSet, Cfg, Loops, SplScratch};
use pdgc_arena::NestedPool;
use pdgc_ir::{Block, Function, Inst, VReg};

/// Resettable scratch for [`Liveness::compute_in`] and
/// [`Liveness::call_crossings_in`].
///
/// Holds the gen/kill/live-in/live-out set carcasses, the traversal order
/// buffer, and the per-block fixpoint temporaries, so recomputing liveness
/// for a stream of functions performs no steady-state heap allocation once
/// the scratch has grown to the largest function seen. Recycle a finished
/// [`Liveness`] with [`Liveness::recycle`] to keep its sets in the pool.
/// Also carries the [`SplScratch`] pools for the SPL region fast path, so
/// one scratch covers the whole analysis phase.
#[derive(Debug, Default)]
pub struct LivenessScratch {
    /// Pooled `Vec<BitSet>` carcasses (gen/kill/live-in/live-out shaped).
    sets: Vec<Vec<BitSet>>,
    order: Vec<Block>,
    pub(crate) out_tmp: BitSet,
    in_tmp: BitSet,
    walk_tmp: BitSet,
    crossings: NestedPool<(Block, usize)>,
    /// Pool for [`crate::DefUse`]'s per-register site lists.
    pub(crate) sites: NestedPool<crate::InstRef>,
    /// Pools for [`crate::Spl`] detection and composition.
    pub spl: SplScratch,
}

impl LivenessScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a pooled set vector with at least `nb` sets of capacity `nv`,
    /// all cleared. Extra sets beyond `nb` are kept (cleared, allocations
    /// intact) rather than dropped: the pool serves both block-sized and
    /// SPL region-sized requests, and truncating on every size change
    /// would re-allocate the difference each round.
    pub(crate) fn take_sets(&mut self, nb: usize, nv: usize) -> Vec<BitSet> {
        let mut v = self.sets.pop().unwrap_or_default();
        for s in &mut v {
            s.reset(nv);
        }
        while v.len() < nb {
            v.push(BitSet::new(nv));
        }
        v
    }

    /// Returns a set vector to the pool, allocations intact.
    pub(crate) fn put_sets(&mut self, v: Vec<BitSet>) {
        self.sets.push(v);
    }

    /// Number of pooled set vectors (diagnostic; used by reuse tests).
    pub fn pooled_sets(&self) -> usize {
        self.sets.len()
    }
}

/// Block-level live-in/live-out sets with per-instruction queries.
///
/// Computed by a standard backward iterative fixpoint over the CFG.
/// Requires φ-functions to be lowered first (the allocator pipeline always
/// lowers them before analysis).
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
    num_vregs: usize,
}

impl Liveness {
    /// Runs the fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if the function still contains φ-functions.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        Self::compute_in(func, cfg, &mut LivenessScratch::default())
    }

    /// Runs the fixpoint using (and refilling) pooled scratch buffers.
    ///
    /// Identical results to [`Liveness::compute`]; the only difference is
    /// where the sets' storage comes from. Pass the [`Liveness`] back via
    /// [`Liveness::recycle`] when done to keep its allocations pooled.
    pub fn compute_in(func: &Function, cfg: &Cfg, scratch: &mut LivenessScratch) -> Self {
        let nb = func.num_blocks();
        let nv = func.num_vregs();
        let mut gen = scratch.take_sets(nb, nv);
        let mut kill = scratch.take_sets(nb, nv);
        fill_gen_kill(func, &mut gen, &mut kill);
        let mut live_in = scratch.take_sets(nb, nv);
        let mut live_out = scratch.take_sets(nb, nv);
        // Iterate in postorder (reverse of RPO) for fast convergence.
        scratch.order.clear();
        scratch
            .order
            .extend(cfg.reverse_postorder().iter().rev().copied());
        let out = &mut scratch.out_tmp;
        let inn = &mut scratch.in_tmp;
        out.reset(nv);
        inn.reset(nv);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &scratch.order {
                out.clear();
                for &s in cfg.succs(b) {
                    out.union_with(&live_in[s.index()]);
                }
                inn.copy_from(out);
                inn.subtract(&kill[b.index()]);
                inn.union_with(&gen[b.index()]);
                if *out != live_out[b.index()] {
                    live_out[b.index()].copy_from(out);
                    changed = true;
                }
                if *inn != live_in[b.index()] {
                    live_in[b.index()].copy_from(inn);
                    changed = true;
                }
            }
        }
        scratch.put_sets(gen);
        scratch.put_sets(kill);
        Liveness {
            live_in,
            live_out,
            num_vregs: nv,
        }
    }

    /// Builds a `Liveness` from already-computed per-block sets. Used by
    /// the SPL composition fast path, which produces bit-identical sets
    /// without running the iterative fixpoint.
    pub(crate) fn from_parts(
        live_in: Vec<BitSet>,
        live_out: Vec<BitSet>,
        num_vregs: usize,
    ) -> Self {
        Liveness {
            live_in,
            live_out,
            num_vregs,
        }
    }

    /// Returns this analysis's set storage to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut LivenessScratch) {
        scratch.put_sets(self.live_in);
        scratch.put_sets(self.live_out);
    }

    /// Registers live at entry to `b`.
    pub fn live_in(&self, b: Block) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Registers live at exit of `b`.
    pub fn live_out(&self, b: Block) -> &BitSet {
        &self.live_out[b.index()]
    }

    /// Number of virtual registers the analysis covers.
    pub fn num_vregs(&self) -> usize {
        self.num_vregs
    }

    /// Walks `b`'s instructions backward, invoking `f(index, inst, live_after)`
    /// where `live_after` holds the registers live immediately *after* the
    /// instruction executes.
    pub fn for_each_inst_backward(
        &self,
        func: &Function,
        b: Block,
        f: impl FnMut(usize, &Inst, &BitSet),
    ) {
        let mut live = BitSet::default();
        self.for_each_inst_backward_in(func, b, &mut live, f);
    }

    /// Like [`Liveness::for_each_inst_backward`], but reuses `live` as the
    /// running set instead of cloning `live_out` per call. `live` is reset
    /// on entry; its previous contents are irrelevant.
    pub fn for_each_inst_backward_in(
        &self,
        func: &Function,
        b: Block,
        live: &mut BitSet,
        mut f: impl FnMut(usize, &Inst, &BitSet),
    ) {
        live.copy_from(&self.live_out[b.index()]);
        for (i, inst) in func.block(b).insts.iter().enumerate().rev() {
            f(i, inst, live);
            if let Some(d) = inst.def() {
                live.remove(d.index());
            }
            inst.visit_uses(|u| {
                live.insert(u.index());
            });
        }
    }

    /// Computes, for every virtual register, the call sites it is live
    /// across (live after the call and not defined by it).
    pub fn call_crossings(&self, func: &Function) -> CallCrossing {
        self.call_crossings_in(func, &mut LivenessScratch::default())
    }

    /// Scratch-backed variant of [`Liveness::call_crossings`]; recycle the
    /// result with [`CallCrossing::recycle`].
    pub fn call_crossings_in(&self, func: &Function, scratch: &mut LivenessScratch) -> CallCrossing {
        let mut crossings = scratch.crossings.take(self.num_vregs);
        let live = &mut scratch.walk_tmp;
        for b in func.block_ids() {
            self.for_each_inst_backward_in(func, b, live, |i, inst, live_after| {
                if inst.is_call() {
                    let def = inst.def();
                    for v in live_after.iter() {
                        if def.map(|d| d.index()) != Some(v) {
                            crossings[v].push((b, i));
                        }
                    }
                }
            });
        }
        CallCrossing { crossings }
    }

    /// The maximum number of simultaneously live registers of the given
    /// class anywhere in the function (a register-pressure estimate).
    pub fn max_pressure(&self, func: &Function, class: pdgc_ir::RegClass) -> usize {
        let mut max = 0;
        for b in func.block_ids() {
            let count = |set: &BitSet| {
                set.iter()
                    .filter(|&v| func.class_of(VReg::new(v)) == class)
                    .count()
            };
            max = max.max(count(self.live_in(b)));
            self.for_each_inst_backward(func, b, |_, _, live| {
                max = max.max(count(live));
            });
        }
        max
    }
}

/// Fills per-block transfer-function sets: `gen[b]` holds the registers
/// used in `b` before any def (upward-exposed uses), `kill[b]` the
/// registers defined in `b`. Shared by the iterative solver and the SPL
/// composition path so both start from identical leaves.
///
/// # Panics
///
/// Panics if the function still contains φ-functions.
pub(crate) fn fill_gen_kill(func: &Function, gen: &mut [BitSet], kill: &mut [BitSet]) {
    for b in func.block_ids() {
        assert!(
            func.block(b).phis.is_empty(),
            "Liveness requires lowered phis"
        );
        let (g, k) = (&mut gen[b.index()], &mut kill[b.index()]);
        for inst in &func.block(b).insts {
            inst.visit_uses(|u| {
                if !k.contains(u.index()) {
                    g.insert(u.index());
                }
            });
            if let Some(d) = inst.def() {
                k.insert(d.index());
            }
        }
    }
}

/// For each register, the call sites it is live across.
///
/// Drives the paper's third preference type ("prefers non-volatile") and the
/// `Call_Cost` term of the Appendix.
#[derive(Clone, Debug)]
pub struct CallCrossing {
    crossings: Vec<Vec<(Block, usize)>>,
}

impl CallCrossing {
    /// The call sites `v` is live across.
    pub fn sites(&self, v: VReg) -> &[(Block, usize)] {
        &self.crossings[v.index()]
    }

    /// Whether `v` is live across any call.
    pub fn crosses_any(&self, v: VReg) -> bool {
        !self.crossings[v.index()].is_empty()
    }

    /// The frequency-weighted number of calls `v` is live across
    /// (`Σ Freq_Fact(Call(V))` from the Appendix).
    ///
    /// Each site contributes up to `factor^9`, so the sum can exceed
    /// `u64::MAX`; it saturates rather than wrapping (or panicking in
    /// debug builds, as a plain `.sum()` would).
    pub fn weighted(&self, v: VReg, loops: &Loops) -> u64 {
        self.crossings[v.index()]
            .iter()
            .fold(0u64, |acc, &(b, _)| acc.saturating_add(loops.freq(b)))
    }

    /// Returns the per-register site storage to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut LivenessScratch) {
        scratch.crossings.put(self.crossings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dominators;
    use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin_imm(BinOp::Add, p, 1);
        let y = b.bin(BinOp::Mul, x, p);
        b.ret(Some(y));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in(Block::ENTRY).contains(p.index()));
        assert!(!lv.live_in(Block::ENTRY).contains(x.index()));
        assert!(lv.live_out(Block::ENTRY).is_empty());
        // After the add, p is still live (used by mul) and x is live.
        let mut seen = Vec::new();
        lv.for_each_inst_backward(&f, Block::ENTRY, |i, _, live| {
            seen.push((i, live.iter().collect::<Vec<_>>()));
        });
        seen.reverse();
        assert_eq!(seen[0].1, vec![p.index(), x.index()]); // after add
        assert_eq!(seen[1].1, vec![y.index()]); // after mul
        assert_eq!(seen[2].1, Vec::<usize>::new()); // after ret
    }

    #[test]
    fn loop_carried_value_live_around_backedge() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, p, z, header, exit);
        b.switch_to(exit);
        b.ret(Some(p));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in(header).contains(p.index()));
        assert!(lv.live_out(header).contains(p.index()));
    }

    #[test]
    fn call_crossing_detected() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let t = b.call("g", vec![], Some(RegClass::Int)).unwrap();
        let r = b.bin(BinOp::Add, t, p);
        b.ret(Some(r));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let cc = lv.call_crossings(&f);
        // p crosses the call; t is defined by it; r doesn't exist yet.
        assert!(cc.crosses_any(p));
        assert!(!cc.crosses_any(t));
        assert!(!cc.crosses_any(r));
        assert_eq!(cc.sites(p).len(), 1);
    }

    #[test]
    fn weighted_crossing_uses_loop_freq() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        b.call("g", vec![], None);
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, p, z, header, exit);
        b.switch_to(exit);
        b.ret(Some(p));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let cc = lv.call_crossings(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        assert_eq!(cc.weighted(p, &loops), 10);
    }

    /// Saturation pin: with the frequency factor itself near `u64::MAX`
    /// (standing in for "very many sites at the depth-9 cap"), summing two
    /// crossed call sites overflows `u64`; `weighted` must saturate, not
    /// wrap or panic.
    #[test]
    fn weighted_crossing_saturates_instead_of_overflowing() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        b.call("g", vec![], None);
        b.call("h", vec![], None);
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, p, z, header, exit);
        b.switch_to(exit);
        b.ret(Some(p));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let cc = lv.call_crossings(&f);
        assert_eq!(cc.sites(p).len(), 2);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute_with_factor(&cfg, &dom, u64::MAX);
        assert_eq!(cc.weighted(p, &loops), u64::MAX);
    }

    #[test]
    fn scratch_reuse_matches_fresh_compute() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let header = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, p, z, header, exit);
        b.switch_to(exit);
        b.ret(Some(p));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let fresh = Liveness::compute(&f, &cfg);

        let mut scratch = LivenessScratch::new();
        for _ in 0..3 {
            let lv = Liveness::compute_in(&f, &cfg, &mut scratch);
            for blk in f.block_ids() {
                assert_eq!(lv.live_in(blk), fresh.live_in(blk));
                assert_eq!(lv.live_out(blk), fresh.live_out(blk));
            }
            let cc = lv.call_crossings_in(&f, &mut scratch);
            assert!(!cc.crosses_any(p));
            cc.recycle(&mut scratch);
            lv.recycle(&mut scratch);
        }
        // gen/kill + live_in/live_out all parked back in the pool.
        assert_eq!(scratch.pooled_sets(), 4);
    }

    #[test]
    fn max_pressure_counts_class() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int, RegClass::Float], None);
        let p = b.param(0);
        let q = b.param(1);
        let a = b.bin_imm(BinOp::Add, p, 1);
        let c = b.bin(BinOp::Add, a, p);
        b.store(c, p, 0);
        let d = b.bin(BinOp::FAdd, q, q);
        b.store(d, p, 8);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.max_pressure(&f, RegClass::Int) >= 2);
        assert_eq!(lv.max_pressure(&f, RegClass::Float), 1);
    }
}
