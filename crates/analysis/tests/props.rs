//! Property tests for the analyses, validated against brute-force
//! definitions on random CFGs.

use pdgc_analysis::{Cfg, Dominators, Liveness, LivenessScratch, Loops, Spl};
use pdgc_ir::{Block, CmpOp, Function, FunctionBuilder, RegClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random function with `n` blocks and arbitrary forward/backward
/// branches; every block ends in a jump, a two-way branch, or a return.
fn random_cfg(n: usize, seed: u64) -> Function {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = FunctionBuilder::new("r", vec![RegClass::Int], None);
    let p = b.param(0);
    let blocks: Vec<Block> = std::iter::once(b.current_block())
        .chain((1..n).map(|_| b.create_block()))
        .collect();
    for (i, &blk) in blocks.iter().enumerate() {
        b.switch_to(blk);
        let choice = rng.gen_range(0..10);
        if choice < 2 || i == n - 1 {
            b.ret(None);
        } else if choice < 6 {
            let t = blocks[rng.gen_range(0..n)];
            b.jump(t);
        } else {
            let t = blocks[rng.gen_range(0..n)];
            let e = blocks[rng.gen_range(0..n)];
            b.branch_imm(CmpOp::Gt, p, 0, t, e);
        }
    }
    let f = b.finish();
    assert!(f.verify().is_ok());
    f
}

/// Brute force: `a` dominates `b` iff every entry→b path passes through
/// `a`, i.e. `b` is unreachable from the entry when `a` is removed.
fn dominates_brute(cfg: &Cfg, a: Block, b: Block) -> bool {
    if !cfg.is_reachable(b) {
        return false;
    }
    if a == b {
        return true;
    }
    if b == Block::ENTRY {
        // Only the entry dominates the entry (the empty path reaches it).
        return false;
    }
    let mut seen = vec![false; cfg.num_blocks()];
    let mut stack = vec![Block::ENTRY];
    if Block::ENTRY == a {
        return true; // entry dominates everything reachable
    }
    seen[Block::ENTRY.index()] = true;
    while let Some(x) = stack.pop() {
        for &s in cfg.succs(x) {
            if s == a || seen[s.index()] {
                continue;
            }
            if s == b {
                return false;
            }
            seen[s.index()] = true;
            stack.push(s);
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The CHK dominator tree agrees with the path-based definition.
    #[test]
    fn dominators_match_brute_force(n in 1usize..12, seed in any::<u64>()) {
        let f = random_cfg(n, seed);
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        for a in f.block_ids() {
            for b in f.block_ids() {
                if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
                    continue;
                }
                prop_assert_eq!(
                    dom.dominates(a, b),
                    dominates_brute(&cfg, a, b),
                    "dominates({}, {}) disagrees (seed {})", a, b, seed
                );
            }
        }
    }

    /// Reverse postorder numbers every reachable block exactly once, with
    /// the entry first.
    #[test]
    fn rpo_covers_reachable_blocks(n in 1usize..15, seed in any::<u64>()) {
        let f = random_cfg(n, seed);
        let cfg = Cfg::compute(&f);
        let rpo = cfg.reverse_postorder();
        prop_assert_eq!(rpo[0], Block::ENTRY);
        let reachable = f.block_ids().filter(|&b| cfg.is_reachable(b)).count();
        prop_assert_eq!(rpo.len(), reachable);
        let mut seen = vec![false; f.num_blocks()];
        for &b in rpo {
            prop_assert!(!seen[b.index()], "duplicate {} in RPO", b);
            seen[b.index()] = true;
        }
    }

    /// Loop headers dominate every block of their loop (checked via the
    /// depth map: any block with depth > 0 is dominated by some header).
    #[test]
    fn loop_depth_blocks_dominated_by_a_header(n in 2usize..12, seed in any::<u64>()) {
        let f = random_cfg(n, seed);
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        for b in f.block_ids() {
            if cfg.is_reachable(b) && loops.depth(b) > 0 {
                prop_assert!(
                    loops.headers().iter().any(|&h| dom.dominates(h, b)),
                    "{} has loop depth but no dominating header (seed {})", b, seed
                );
            }
        }
    }

    /// On whatever random CFGs happen to be SPL-shaped, the region-composed
    /// liveness and loop structure are bit-identical to the iterative
    /// solvers; on the rest the fast paths decline cleanly.
    #[test]
    fn spl_fast_paths_match_iterative_on_random_cfgs(n in 1usize..14, seed in any::<u64>()) {
        let f = random_cfg(n, seed);
        let cfg = Cfg::compute(&f);
        let spl = Spl::compute(&cfg);
        match spl.liveness_in(&f, &cfg, &mut LivenessScratch::new()) {
            Some(fast) => {
                let slow = Liveness::compute(&f, &cfg);
                for b in f.block_ids() {
                    prop_assert_eq!(fast.live_in(b), slow.live_in(b),
                        "live_in({}) diverges (seed {})", b, seed);
                    prop_assert_eq!(fast.live_out(b), slow.live_out(b),
                        "live_out({}) diverges (seed {})", b, seed);
                }
            }
            None => prop_assert!(!spl.is_spl()),
        }
        if let Some(fast) = spl.loops() {
            let dom = Dominators::compute(&cfg);
            let slow = Loops::compute(&cfg, &dom);
            prop_assert_eq!(fast.headers(), slow.headers(), "headers diverge (seed {})", seed);
            for b in f.block_ids() {
                prop_assert_eq!(fast.depth(b), slow.depth(b),
                    "depth({}) diverges (seed {})", b, seed);
                prop_assert_eq!(fast.freq(b), slow.freq(b),
                    "freq({}) diverges (seed {})", b, seed);
            }
        }
    }

    /// Liveness is a fixpoint of the dataflow equations:
    /// `out[b] = ∪ in[s]`, `in[b] = gen[b] ∪ (out[b] ∖ kill[b])`.
    #[test]
    fn liveness_is_a_fixpoint(n in 1usize..10, seed in any::<u64>()) {
        let f = random_cfg(n, seed);
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        for b in f.block_ids() {
            if !cfg.is_reachable(b) {
                // Unreachable blocks keep empty sets by construction.
                continue;
            }
            // out[b] = union of successors' in-sets.
            let mut out = pdgc_analysis::BitSet::new(f.num_vregs());
            for &s in cfg.succs(b) {
                out.union_with(lv.live_in(s));
            }
            prop_assert_eq!(&out, lv.live_out(b), "out[{}] not a fixpoint", b);
            // in[b] via a backward walk of the block's instructions.
            let mut inn = out;
            for inst in f.block(b).insts.iter().rev() {
                if let Some(d) = inst.def() {
                    inn.remove(d.index());
                }
                inst.visit_uses(|u| {
                    inn.insert(u.index());
                });
            }
            prop_assert_eq!(&inn, lv.live_in(b), "in[{}] not a fixpoint", b);
        }
    }
}
